//! A bounded worker pool for the experiment harness.
//!
//! All parallelism in the harness funnels through one [`Gate`]: a counting
//! semaphore whose permit count is the `--jobs` bound. Experiments submit
//! *leaf* jobs (one simulated run, one topology's plans, …) via
//! [`Gate::map`]; at most `permits` leaves execute at any instant no matter
//! how many experiments fan out concurrently.
//!
//! Two invariants keep this simple scheme correct:
//!
//! * **Leaves never nest.** Only leaf closures hold a permit; orchestration
//!   code (experiment bodies, aggregation) runs permit-free, so waiting for
//!   `map` to finish can never deadlock on the gate.
//! * **Results keep input order.** `map` returns outputs indexed by input
//!   position, and every leaf derives its randomness from its own seed, so
//!   results are byte-identical for any permit count — FoundationDB-style
//!   determinism: the schedule may vary, the outcome may not.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// RAII permit: released on drop, so panicking leaf jobs cannot leak
/// permits and starve the pool.
struct Permit<'a>(&'a Gate);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Counting semaphore bounding concurrently running leaf jobs.
pub struct Gate {
    capacity: usize,
    available: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    /// A gate admitting `permits` concurrent leaves (minimum 1).
    pub fn new(permits: usize) -> Self {
        let capacity = permits.max(1);
        Gate {
            capacity,
            available: Mutex::new(capacity),
            cv: Condvar::new(),
        }
    }

    /// The configured permit count.
    pub fn permits(&self) -> usize {
        self.capacity
    }

    fn acquire(&self) {
        let mut available = self.available.lock().expect("gate poisoned");
        while *available == 0 {
            available = self.cv.wait(available).expect("gate poisoned");
        }
        *available -= 1;
    }

    fn release(&self) {
        let mut available = self.available.lock().expect("gate poisoned");
        *available += 1;
        self.cv.notify_one();
    }

    /// Acquires a permit held for the guard's lifetime (released on drop,
    /// including unwinds).
    fn permit(&self) -> Permit<'_> {
        self.acquire();
        Permit(self)
    }

    /// Applies `f` to every item on worker threads, with at most
    /// [`Gate::permits`] leaves running at once globally, and returns the
    /// results in input order.
    ///
    /// `f` must not call `map` again (leaves never nest — see module docs).
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        // Workers pull indices from a shared cursor; the permit gate (shared
        // across every concurrent `map` call in the process) bounds how many
        // are actually running.
        let workers = self.capacity.min(n);
        let slots: Vec<Mutex<Option<T>>> = items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced: Vec<(usize, U)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let item = slots[i]
                                .lock()
                                .expect("slot poisoned")
                                .take()
                                .expect("each slot is taken once");
                            // The guard releases the permit even if `f`
                            // panics — a leaked permit would deadlock every
                            // other worker instead of surfacing the panic.
                            let permit = self.permit();
                            let result = f(item);
                            drop(permit);
                            produced.push((i, result));
                        }
                        produced
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("pool worker panicked") {
                    out[i] = Some(result);
                }
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("every index produced"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_order() {
        let gate = Gate::new(4);
        let out = gate.map((0..100).collect(), |i: usize| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_on_empty_input() {
        let gate = Gate::new(4);
        let out: Vec<usize> = gate.map(Vec::<usize>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn serial_gate_runs_one_at_a_time() {
        let gate = Gate::new(1);
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        gate.map((0..16).collect(), |_: usize| {
            let now = running.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            running.fetch_sub(1, Ordering::SeqCst);
        });
        assert_eq!(peak.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn permit_bound_holds_across_concurrent_maps() {
        let gate = Gate::new(3);
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    gate.map((0..8).collect(), |_: usize| {
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        running.fetch_sub(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn panicking_leaf_does_not_leak_permits() {
        let gate = Gate::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gate.map(vec![0usize], |_| -> usize { panic!("boom") });
        }));
        assert!(result.is_err(), "the leaf panic propagates");
        // The sole permit was released on unwind; the gate still works.
        assert_eq!(gate.map(vec![1, 2, 3], |i: usize| i), vec![1, 2, 3]);
    }

    #[test]
    fn results_identical_for_any_permit_count() {
        let work = |i: u64| {
            // Pure function of the item — the determinism contract.
            let mut acc = i;
            for _ in 0..50 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        };
        let serial = Gate::new(1).map((0..64).collect(), work);
        let parallel = Gate::new(8).map((0..64).collect(), work);
        assert_eq!(serial, parallel);
    }
}
