//! Minimal timing harness for the `harness = false` bench targets.
//!
//! The offline build environment has no criterion; this provides the small
//! slice the benches need — named groups, labelled cases, warmup + sampled
//! timing with min/median/max — printed one line per case:
//!
//! ```text
//! fig08_correlated_failure/Storm  min 41.2ms  med 42.0ms  max 44.9ms  (10 samples)
//! ```

use std::time::{Duration, Instant};

/// A started wall-clock timer.
///
/// This module is the only place the workspace reads the host clock: the
/// determinism lint (rule D002) confines `Instant`/`SystemTime` to this
/// file, so everything that needs wall time — the experiment runner's
/// progress reporting, the bench targets — goes through [`Stopwatch`] or
/// [`Group`]. Simulated time (`ppa_sim`) stays the only clock anywhere
/// results are computed.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a timer now.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Wall time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A named group of timed cases.
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    pub fn new(name: impl Into<String>) -> Self {
        Group {
            name: name.into(),
            samples: 10,
        }
    }

    /// Samples per case (default 10, minimum 1).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f` (one warmup, then `samples` measured runs) and prints the
    /// result. The return value is passed through `black_box` so the work
    /// cannot be optimized away.
    pub fn bench<T>(&self, label: &str, mut f: impl FnMut() -> T) {
        std::hint::black_box(f()); // warmup
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed());
        }
        times.sort();
        // ppa-lint: allow(D006, reason = "Duration has no Display; bench timing lines are not golden output")
        println!(
            "{}/{label}  min {:.1?}  med {:.1?}  max {:.1?}  ({} samples)",
            self.name,
            times[0],
            times[times.len() / 2],
            times[times.len() - 1],
            self.samples,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_warmup_plus_samples() {
        let mut calls = 0;
        Group::new("g").sample_size(3).bench("case", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 4, "1 warmup + 3 samples");
    }
}
