//! The parallel experiment runner.
//!
//! Experiments run concurrently, one orchestration thread each; all their
//! heavy work funnels through a single bounded [`Gate`] shared by every
//! experiment, so `--jobs N` bounds the *whole process*, not each
//! experiment. Results are collected and rendered in registry order, and
//! every leaf job owns its seed, so stdout is byte-identical for any job
//! count.

use crate::json::Json;
use crate::pool::Gate;
use crate::stopwatch::Stopwatch;
use crate::{registry, Experiment, Figure};
use ppa_engine::{EngineEvent, RunReport};
use ppa_obs::{to_chrome_trace, to_jsonl};
use ppa_sim::SimTime;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Options for one harness invocation.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// CI scale instead of paper scale.
    pub quick: bool,
    /// Worker-pool size (leaf jobs running at once). 0 = available
    /// parallelism.
    pub jobs: usize,
    /// Experiment ids to run; empty = all.
    pub only: Vec<String>,
    /// Case-insensitive substring filter over experiment ids, applied
    /// after `only` (`--filter sweep` selects every `*_sweep`).
    pub filter: Option<String>,
    /// Emit per-experiment progress and timings on stderr.
    pub progress: bool,
    /// Record engine traces: every driven run's event stream lands under
    /// `<trace_dir>/<experiment id>/` as a JSONL trace plus a Chrome
    /// `trace_event` file. Trace files are byte-identical for any `jobs`.
    pub trace_dir: Option<PathBuf>,
    /// Override the engine's intra-run shard count for every driven run
    /// (`EngineConfig::shards`). `None` keeps each scenario's own
    /// setting. Any value yields byte-identical output — this knob only
    /// trades wall-clock time, like `jobs`.
    pub shards: Option<usize>,
    /// Root seed for seeded experiments (the chaos swarm). `None` keeps
    /// each experiment's fixed default, so unseeded runs stay
    /// byte-identical run to run.
    pub seed: Option<u64>,
    /// Scenario-count override for the chaos swarm; `None` = the scale
    /// default (200 quick / 1000 full).
    pub swarm: Option<usize>,
}

impl RunOptions {
    /// The effective worker count: `jobs`, or available parallelism when 0.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism().map_or(4, |p| p.get())
        }
    }
}

/// Recovery of one task inside one logged run.
#[derive(Debug, Clone)]
pub struct RecoveryRecord {
    pub task: usize,
    pub via_replica: bool,
    /// Detection instant, seconds of virtual time.
    pub detected_s: f64,
    /// Detection → progress restored; `None` if the run ended first.
    pub latency_s: Option<f64>,
}

/// One simulated run's recovery outcome, logged for the JSON reporter.
#[derive(Debug, Clone)]
pub struct RunLog {
    /// Scenario label, e.g. `"win:10s rate:300tp/s"`.
    pub scenario: String,
    /// Strategy label, e.g. `"Checkpoint-15s"` or `"PPA-16t-15s"`.
    pub strategy: String,
    pub fail_at_s: u64,
    pub kill_nodes: Vec<usize>,
    pub recoveries: Vec<RecoveryRecord>,
    /// Events the simulation processed (a determinism fingerprint).
    pub events: u64,
    /// Tuples the engine scheduled for delivery, replica copies included
    /// (deterministic, so part of the compared payload).
    pub tuples_moved: u64,
    /// Outage records across all tasks (first failures + re-failures).
    pub outages: usize,
    /// Outage records beyond each task's first (re-failures).
    pub refails: usize,
    /// Outage records that closed (progress restored) before run end.
    pub outages_recovered: usize,
    /// Wall-clock seconds this run took (measured by the sanctioned
    /// [`Stopwatch`]); reported by [`RunLog::to_json_timed`] only — never
    /// in the determinism-compared payload.
    pub wall_s: f64,
}

impl RunLog {
    /// Builds a log from a finished run.
    pub fn from_report(
        scenario: impl Into<String>,
        strategy: impl Into<String>,
        fail_at_s: u64,
        kill_nodes: Vec<usize>,
        report: &RunReport,
    ) -> Self {
        RunLog {
            scenario: scenario.into(),
            strategy: strategy.into(),
            fail_at_s,
            kill_nodes,
            recoveries: report
                .recoveries
                .iter()
                .map(|r| RecoveryRecord {
                    task: r.task.0,
                    via_replica: r.via_replica,
                    detected_s: r.detected_at.as_secs_f64(),
                    latency_s: r.latency().map(|d| d.as_secs_f64()),
                })
                .collect(),
            events: report.events,
            tuples_moved: report.tuples_moved,
            outages: report.outages.iter().map(|o| o.records.len()).sum(),
            refails: report.refail_count(),
            outages_recovered: report
                .outages
                .iter()
                .flat_map(|o| o.records.iter())
                .filter(|r| !r.open())
                .count(),
            wall_s: 0.0,
        }
    }

    /// Sort key making log order independent of worker scheduling.
    fn sort_key(&self) -> (String, String, u64, Vec<usize>) {
        (
            self.scenario.clone(),
            self.strategy.clone(),
            self.fail_at_s,
            self.kill_nodes.clone(),
        )
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("scenario", Json::str(&self.scenario)),
            ("strategy", Json::str(&self.strategy)),
            ("fail_at_s", Json::Int(self.fail_at_s as i64)),
            (
                "kill_nodes",
                Json::Arr(
                    self.kill_nodes
                        .iter()
                        .map(|&n| Json::Int(n as i64))
                        .collect(),
                ),
            ),
            ("events", Json::Int(self.events as i64)),
            ("tuples_moved", Json::Int(self.tuples_moved as i64)),
            ("outages", Json::Int(self.outages as i64)),
            ("refails", Json::Int(self.refails as i64)),
            (
                "outages_recovered",
                Json::Int(self.outages_recovered as i64),
            ),
            (
                "recoveries",
                Json::Arr(
                    self.recoveries
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("task", Json::Int(r.task as i64)),
                                ("via_replica", Json::Bool(r.via_replica)),
                                ("detected_s", Json::Num(r.detected_s)),
                                ("latency_s", Json::opt_num(r.latency_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// [`RunLog::to_json`] plus the run's wall-clock timing and derived
    /// throughput rates. Only the JSON report uses this — the `--jobs`
    /// determinism tests compare `to_json`, which deliberately excludes
    /// everything wall-clock-derived.
    pub fn to_json_timed(&self) -> Json {
        match self.to_json() {
            Json::Obj(mut fields) => {
                fields.push(("wall_s".to_string(), Json::Num(self.wall_s)));
                let rate = |n: u64| {
                    if self.wall_s > 0.0 {
                        n as f64 / self.wall_s
                    } else {
                        0.0
                    }
                };
                fields.push(("events_per_sec".to_string(), Json::Num(rate(self.events))));
                fields.push((
                    "tuples_per_sec".to_string(),
                    Json::Num(rate(self.tuples_moved)),
                ));
                Json::Obj(fields)
            }
            other => other,
        }
    }
}

/// One driven run's recorded engine-event stream, keyed like its
/// [`RunLog`] so trace files sort into the same scheduling-independent
/// order as the logs.
pub struct TraceLog {
    pub scenario: String,
    pub strategy: String,
    pub fail_at_s: u64,
    pub kill_nodes: Vec<usize>,
    pub events: Vec<(SimTime, EngineEvent)>,
}

impl TraceLog {
    fn sort_key(&self) -> (String, String, u64, Vec<usize>) {
        (
            self.scenario.clone(),
            self.strategy.clone(),
            self.fail_at_s,
            self.kill_nodes.clone(),
        )
    }
}

/// Per-experiment execution context: the quick flag, the shared worker
/// gate, and the run log / trace collectors.
pub struct RunCtx {
    /// CI scale instead of paper scale.
    pub quick: bool,
    /// Engine shard-count override for driven runs (see
    /// [`RunOptions::shards`]).
    pub shards: Option<usize>,
    /// Root-seed override for seeded experiments (see
    /// [`RunOptions::seed`]).
    pub seed: Option<u64>,
    /// Chaos-swarm scenario-count override (see [`RunOptions::swarm`]).
    pub swarm: Option<usize>,
    gate: Arc<Gate>,
    logs: Mutex<Vec<RunLog>>,
    /// Where this experiment's trace files land; `None` = tracing off.
    trace_dir: Option<PathBuf>,
    traces: Mutex<Vec<TraceLog>>,
}

impl RunCtx {
    pub fn new(quick: bool, gate: Arc<Gate>) -> Self {
        RunCtx {
            quick,
            shards: None,
            seed: None,
            swarm: None,
            gate,
            logs: Mutex::new(Vec::new()),
            trace_dir: None,
            traces: Mutex::new(Vec::new()),
        }
    }

    /// Sets the engine shard-count override for driven runs.
    pub fn with_shards(mut self, shards: Option<usize>) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the root-seed and scenario-count overrides for seeded
    /// experiments.
    pub fn with_swarm(mut self, seed: Option<u64>, swarm: Option<usize>) -> Self {
        self.seed = seed;
        self.swarm = swarm;
        self
    }

    /// A context with a private single-permit gate — serial execution, for
    /// benches and tests.
    pub fn serial(quick: bool) -> Self {
        RunCtx::new(quick, Arc::new(Gate::new(1)))
    }

    /// Turns trace recording on: driven runs buffer their engine-event
    /// streams and [`RunCtx::write_traces`] renders them under `dir`.
    pub fn with_trace_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.trace_dir = dir;
        self
    }

    /// Whether driven runs should record their engine-event streams.
    pub fn tracing(&self) -> bool {
        self.trace_dir.is_some()
    }

    /// Runs `f` over `items` as leaf jobs on the shared bounded pool;
    /// results come back in input order. Leaf closures must not call `map`
    /// again (see [`crate::pool`]).
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.gate.map(items, f)
    }

    /// Records a run for the JSON reporter.
    pub fn log_run(&self, log: RunLog) {
        self.logs.lock().expect("log collector poisoned").push(log);
    }

    /// Drains the collected run logs, sorted into a scheduling-independent
    /// order.
    pub fn take_logs(&self) -> Vec<RunLog> {
        let mut logs = std::mem::take(&mut *self.logs.lock().expect("log collector poisoned"));
        logs.sort_by_key(|l| l.sort_key());
        logs
    }

    /// Records a driven run's engine-event stream (no-op unless tracing).
    pub fn log_trace(&self, trace: TraceLog) {
        if self.tracing() {
            self.traces
                .lock()
                .expect("trace collector poisoned")
                .push(trace);
        }
    }

    /// Writes every collected trace under the context's trace directory
    /// as `<scenario>__<strategy>.jsonl` + `.chrome.json` (an index
    /// suffix disambiguates runs sharing a label). Traces are sorted by
    /// the same key as the run logs first, and filenames derive only
    /// from run labels, so the directory contents are byte-identical for
    /// any worker count. Returns the number of runs written.
    pub fn write_traces(&self) -> std::io::Result<usize> {
        let Some(dir) = &self.trace_dir else {
            return Ok(0);
        };
        let mut traces =
            std::mem::take(&mut *self.traces.lock().expect("trace collector poisoned"));
        traces.sort_by_key(|t| t.sort_key());
        if traces.is_empty() {
            return Ok(0);
        }
        std::fs::create_dir_all(dir)?;
        let mut used: BTreeMap<String, usize> = BTreeMap::new();
        for t in &traces {
            let base = sanitize_filename(&format!("{}__{}", t.scenario, t.strategy));
            let n = used.entry(base.clone()).or_insert(0);
            let name = if *n == 0 {
                base.clone()
            } else {
                format!("{base}__{n}")
            };
            *n += 1;
            std::fs::write(dir.join(format!("{name}.jsonl")), to_jsonl(&t.events))?;
            std::fs::write(
                dir.join(format!("{name}.chrome.json")),
                to_chrome_trace(&t.events),
            )?;
        }
        Ok(traces.len())
    }
}

/// Collapses a run label into a filesystem-safe name: `[A-Za-z0-9._-]`
/// kept, every other character (spaces, `:`, `/`) becomes `-`.
fn sanitize_filename(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// One experiment's outcome.
pub struct ExperimentResult {
    pub id: &'static str,
    pub description: &'static str,
    pub section: &'static str,
    pub figures: Vec<Figure>,
    /// Per-run recovery logs (recovery experiments only; accuracy/planning
    /// experiments log nothing).
    pub runs: Vec<RunLog>,
    /// Wall-clock time of this experiment (reported on stderr and in JSON,
    /// never on stdout — stdout must be run-to-run identical).
    pub wall: Duration,
}

/// A whole harness invocation's outcome.
pub struct RunSummary {
    pub quick: bool,
    pub jobs: usize,
    pub results: Vec<ExperimentResult>,
    pub total_wall: Duration,
}

/// Why [`select`] could not produce a run list. The two cases need
/// different advice — a typo'd id should be corrected against the known
/// ids, while an over-narrow filter should be widened — so the CLI keeps
/// them distinct instead of collapsing both into one string list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// Selectors naming no registered experiment (typos).
    UnknownIds(Vec<String>),
    /// The `--filter` substring matched none of the selected ids.
    FilterMatchedNothing(String),
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::UnknownIds(ids) => {
                write!(f, "unknown experiment id(s): {}", ids.join(", "))
            }
            SelectError::FilterMatchedNothing(needle) => {
                write!(f, "--filter \"{needle}\" matched no experiment")
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// Resolves `opts.only` against the registry, preserving registry order,
/// then applies the optional case-insensitive id-substring `filter`.
/// Returns a [`SelectError`] naming the typo'd ids or the empty filter so
/// the CLI can report them.
pub fn select(only: &[String], filter: Option<&str>) -> Result<Vec<Experiment>, SelectError> {
    let all = registry();
    // Unknown ids are an error even alongside "all" — `reproduce all fgi08`
    // is a typo the user wants to hear about, not silently run everything.
    let unknown: Vec<String> = only
        .iter()
        .filter(|w| *w != "all" && !all.iter().any(|e| e.id == w.as_str()))
        .cloned()
        .collect();
    if !unknown.is_empty() {
        return Err(SelectError::UnknownIds(unknown));
    }
    let mut picked: Vec<Experiment> = if only.is_empty() || only.iter().any(|w| w == "all") {
        all
    } else {
        all.into_iter()
            .filter(|e| only.iter().any(|w| w == e.id))
            .collect()
    };
    if let Some(f) = filter {
        let needle = f.to_lowercase();
        picked.retain(|e| e.id.contains(&needle));
        if picked.is_empty() {
            // A filter matching nothing is as loud as a typo'd id.
            return Err(SelectError::FilterMatchedNothing(f.to_string()));
        }
    }
    Ok(picked)
}

/// Runs the selected experiments on the bounded pool and returns results in
/// registry order. Panics on unknown ids — call [`select`] first to report
/// them gracefully.
pub fn run_experiments(opts: &RunOptions) -> RunSummary {
    let selected = select(&opts.only, opts.filter.as_deref()).expect("unknown experiment ids");
    let jobs = opts.effective_jobs();
    let gate = Arc::new(Gate::new(jobs));
    let total_start = Stopwatch::start();

    let mut results: Vec<ExperimentResult> = Vec::with_capacity(selected.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = selected
            .iter()
            .map(|e| {
                let gate = Arc::clone(&gate);
                let quick = opts.quick;
                let progress = opts.progress;
                let trace_dir = opts.trace_dir.as_ref().map(|d| d.join(e.id));
                let shards = opts.shards;
                let (seed, swarm) = (opts.seed, opts.swarm);
                scope.spawn(move || {
                    if progress {
                        eprintln!(">> running {}: {}", e.id, e.description);
                    }
                    let ctx = RunCtx::new(quick, gate)
                        .with_trace_dir(trace_dir)
                        .with_shards(shards)
                        .with_swarm(seed, swarm);
                    let start = Stopwatch::start();
                    let figures = (e.run)(&ctx);
                    let traced = ctx
                        .write_traces()
                        .expect("trace directory must be writable");
                    let wall = start.elapsed();
                    if progress {
                        eprintln!("<< {} done in {:.1?}", e.id, wall);
                        if traced > 0 {
                            eprintln!("   {} traced {traced} runs", e.id);
                        }
                    }
                    ExperimentResult {
                        id: e.id,
                        description: e.description,
                        section: e.section,
                        figures,
                        runs: ctx.take_logs(),
                        wall,
                    }
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("experiment thread panicked"));
        }
    });

    RunSummary {
        quick: opts.quick,
        jobs,
        results,
        total_wall: total_start.elapsed(),
    }
}

/// Renders the whole run as the markdown report printed on stdout.
///
/// Deliberately contains no wall-clock timings or job counts: stdout must
/// be byte-identical between `--jobs 1` and `--jobs N` (and across
/// repeated runs). Timings go to stderr and the JSON report.
pub fn render_markdown(summary: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# PPA reproduction run ({} mode)\n\n",
        if summary.quick { "quick" } else { "full" }
    ));
    out.push_str(
        "Reproducing: Su & Zhou, \"Tolerating Correlated Failures in Massively \
         Parallel Stream Processing Engines\", ICDE 2016.\n\n",
    );
    for result in &summary.results {
        out.push_str(&format!(
            "## {} ({})\n\n",
            result.description, result.section
        ));
        for fig in &result.figures {
            out.push_str(&fig.to_markdown());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_all_and_subsets() {
        assert_eq!(select(&[], None).unwrap().len(), registry().len());
        assert_eq!(
            select(&["all".into()], None).unwrap().len(),
            registry().len()
        );
        let picked = select(&["fig13".into(), "fig08".into()], None).unwrap();
        // Registry order, not request order.
        assert_eq!(
            picked.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec!["fig08", "fig13"]
        );
        // Repeated selectors queue the experiment once, not twice.
        let repeated = select(&["fig08".into(), "fig08".into()], None).unwrap();
        assert_eq!(repeated.iter().map(|e| e.id).collect::<Vec<_>>(), ["fig08"]);
        assert_eq!(
            select(&["nope".into()], None).unwrap_err(),
            SelectError::UnknownIds(vec!["nope".to_string()])
        );
        // A typo next to "all" is still an error, not a silent run-everything.
        assert_eq!(
            select(&["all".into(), "fgi08".into()], None).unwrap_err(),
            SelectError::UnknownIds(vec!["fgi08".to_string()])
        );
    }

    #[test]
    fn filter_selects_by_id_substring() {
        let sweeps = select(&[], Some("sweep")).unwrap();
        assert_eq!(
            sweeps.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![
                "corr_sweep",
                "placement_sweep",
                "adaptive_sweep",
                "refail_sweep",
                "scale_sweep",
                "approx_sweep"
            ],
            "registry order preserved"
        );
        // Case-insensitive, composes with explicit ids.
        let one = select(&["fig08".into(), "corr_sweep".into()], Some("SWEEP")).unwrap();
        assert_eq!(one.iter().map(|e| e.id).collect::<Vec<_>>(), ["corr_sweep"]);
        // A filter matching nothing is an error naming the filter, kept
        // apart from the unknown-id case so the CLI's advice differs.
        assert_eq!(
            select(&[], Some("zzz")).unwrap_err(),
            SelectError::FilterMatchedNothing("zzz".to_string())
        );
        assert_eq!(
            select(&["fig08".into()], Some("sweep")).unwrap_err(),
            SelectError::FilterMatchedNothing("sweep".to_string())
        );
    }

    #[test]
    fn take_logs_sorts_deterministically() {
        let ctx = RunCtx::serial(true);
        let mk = |scenario: &str, strategy: &str| RunLog {
            scenario: scenario.into(),
            strategy: strategy.into(),
            fail_at_s: 40,
            kill_nodes: vec![4],
            recoveries: vec![],
            events: 0,
            tuples_moved: 0,
            outages: 0,
            refails: 0,
            outages_recovered: 0,
            wall_s: 0.0,
        };
        ctx.log_run(mk("b", "Storm"));
        ctx.log_run(mk("a", "Storm"));
        ctx.log_run(mk("a", "Active-5s"));
        let logs = ctx.take_logs();
        let keys: Vec<_> = logs
            .iter()
            .map(|l| (l.scenario.as_str(), l.strategy.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![("a", "Active-5s"), ("a", "Storm"), ("b", "Storm")]
        );
        assert!(ctx.take_logs().is_empty(), "take drains");
    }
}
