//! `refail_sweep`: what does *honest* re-failure accounting change? The
//! paper's recovery guarantees (§VI) assume a task can fail again after
//! its replica takes over; this experiment replays exactly that scenario
//! — two cascade waves, the second aimed at the standby racks hosting
//! the replicas the first wave activated — and measures the fidelity gap
//! between the static baseline and the domain-health control policy.
//!
//! Every cell builds the `adaptive_sweep` cluster (12 workers + 12
//! standbys, racks of 4 spanning the worker/standby boundary), places
//! the Fig. 6 query round-robin with a PPA-`n/2` plan built against the
//! placement's own rack mapping, and replays one seeded two-wave failure
//! scenario:
//!
//! * **wave 1** — a cascade pinned to the first worker rack: primaries
//!   die, their replicas on the aligned standby rack take over;
//! * **wave 2** — 30 s later, a cascade pinned to the first *standby*
//!   rack: the activated replicas die. Under the one-shot bookkeeping
//!   this PR replaced, these tasks kept their first `recovered_at` and
//!   were silently treated as healthy — no re-detection, no proxying, no
//!   second recovery. With the lifecycle state machine each one opens a
//!   second `OutageRecord` and re-enters the outage path.
//!
//! Both policies replay identical node deaths; passive recovery is held
//! down (steady-state tentative sampling), so a re-failed task comes
//! back only if the control plane re-homes its dead standby and
//! re-establishes its replica. Reported per cell: output fidelity inside
//! the second outage's own window — the window boundaries come from
//! `ppa_workloads::outage_windows` over the static run's outage
//! histories (both policies replay the same node deaths, so the static
//! run's onsets are the scenario's outage boundaries), so the first
//! wave's recovered output cannot dilute the second wave's loss — plus
//! the re-failure histories (second outages opened, second recoveries
//! completed) behind the gap.

use super::{drive_scenario_config, schedule, Strategy};
use crate::runner::RunCtx;
use crate::{Figure, Series};
use ppa_core::{Planner, StructureAwarePlanner, TaskSet};
use ppa_engine::{Cluster, DomainHealthPolicy, DriveReport, FailureTrace, RoundRobin, Simulation};
use ppa_faults::{CascadeProcess, FailureProcess};
use ppa_sim::{SimDuration, SimTime};
use ppa_workloads::{outage_fidelity, outage_windows, Fig6Config, Scenario};

/// Cluster shape shared by every cell (the `adaptive_sweep` cluster).
const N_WORKERS: usize = 12;
const N_STANDBY: usize = 12;
const RACK_SIZE: usize = 4;
/// Wave 2 lands this long after wave 1 — past detection and takeover, so
/// the second wave kills *activated* replicas, not muted ones.
const WAVE_GAP_SECS: u64 = 30;

/// One cell: the spread probability shared by both cascade waves.
fn cells(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.9]
    } else {
        vec![0.0, 0.5, 0.9]
    }
}

/// The two-wave trace of a cell: wave 1 from the first worker rack, wave
/// 2 from the first standby rack (the rack `RoundRobin` aligns with the
/// first worker rack's standbys). Policy-independent, so both series
/// replay identical node deaths.
fn two_wave_trace(cluster: &Cluster, corr: f64, fail_at: u64, base_seed: u64) -> FailureTrace {
    let tree = cluster.domains.as_ref().expect("racked cluster has a tree");
    let horizon = SimDuration::from_secs(20);
    let wave = |origin: usize, start_secs: u64, salt: u64| {
        let process = CascadeProcess {
            level: 1,
            spread: corr,
            decay: 0.5,
            hop_delay: SimDuration::from_secs(2),
            fraction: 1.0,
            origin: Some(origin),
        };
        let seed = base_seed ^ salt ^ (((corr * 100.0) as u64) << 20);
        process.generate_seeded(tree, SimTime::from_secs(start_secs), horizon, seed)
    };
    let mut trace = wave(0, fail_at, 0x2ef1);
    let standby_origin = N_WORKERS / RACK_SIZE; // first standby rack
    for e in wave(standby_origin, fail_at + WAVE_GAP_SECS, 0x2ef2).events() {
        trace.push(e.at, e.nodes.clone());
    }
    trace
}

/// One policy's outcome within a cell.
struct PolicyOutcome {
    /// Fidelity inside the first outage window `[wave1, wave2)`.
    fidelity_w1: f64,
    /// Fidelity inside the second outage window `[wave2, wave2 + 45 s)`.
    fidelity_w2: f64,
    /// Second outages opened (tasks whose activated replica died).
    refails: usize,
    /// Second outages that recovered within the run.
    second_recoveries: usize,
}

/// One cell's outcome: both policies over the identical kill set.
struct Outcome {
    by_policy: Vec<PolicyOutcome>,
    killed: usize,
}

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;
    let (fail_at, duration) = schedule(quick);
    let wave2 = fail_at + WAVE_GAP_SECS;
    let cfg = Fig6Config {
        rate: if quick { 300 } else { 1000 },
        window: SimDuration::from_secs(if quick { 10 } else { 30 }),
        ..Fig6Config::default()
    };
    let cells = cells(quick);
    let roster = ["static", "domain-health"];

    // One leaf job per cell: both policies share the cluster, trace,
    // plan and golden run, and the outage windows are derived once from
    // the static run's own histories.
    let outcomes: Vec<Outcome> = ctx.map(cells.clone(), |corr| {
        let cluster = Cluster::racked(N_WORKERS, N_STANDBY, RACK_SIZE).expect("positive rack size");
        let trace = two_wave_trace(&cluster, corr, fail_at, cfg.seed);
        let scenario = || -> Scenario {
            ppa_workloads::fig6_scenario(&cfg)
                .placed_with(&RoundRobin, &cluster)
                .expect("fig6 fits the sweep cluster")
        };
        let base = scenario();
        let n = base.graph().n_tasks();
        let cx = base
            .placement
            .plan_context(base.query.topology())
            .expect("fig6 plans against its racked cluster");
        let plan: TaskSet = StructureAwarePlanner::default()
            .plan(&cx, n / 2)
            .expect("SA plan")
            .tasks;
        let strategy = Strategy::Ppa {
            plan,
            interval_secs: 5,
        };
        // Steady-state tentative sampling: a re-failed task comes back
        // only through the control plane.
        let config = || {
            let mut c = strategy.config(n, cfg.window, cfg.seed);
            c.passive_recovery = false;
            c
        };

        let golden = Simulation::run_trace(
            &base.query,
            base.placement.clone(),
            config(),
            &FailureTrace::new(),
            SimDuration::from_secs(duration),
        );
        let drive = |s: &Scenario, policy_name: &str| -> DriveReport {
            drive_scenario_config(
                ctx,
                &format!("corr:{corr} policy:{policy_name}"),
                s,
                &strategy,
                config(),
                &trace,
                duration,
            )
        };
        let static_run = drive(&base, roster[0]);
        let budget = n / 2;
        let adaptive =
            scenario().with_policy(move || Box::new(DomainHealthPolicy::new(Some(budget))));
        let adaptive_run = drive(&adaptive, roster[1]);

        // Attribute fidelity to each wave's own outage window: the
        // boundaries come from the static run's outage histories (both
        // runs replay identical node deaths), split at the first onset
        // of the second wave.
        let batch = config().batch_interval;
        let w2_start = outage_windows(&static_run.report, batch, duration)
            .iter()
            .map(|&(from, _)| from)
            .find(|&b| b >= wave2)
            .unwrap_or(wave2);
        let windows = [(fail_at, w2_start), (w2_start, w2_start + 45)];
        let outcome = |driven: &DriveReport| -> PolicyOutcome {
            let scores = outage_fidelity(
                &golden,
                &driven.report,
                &windows,
                SimDuration::from_secs(5), // one heartbeat of slack
            );
            // Both series count TASKS (a re-established replica dying in
            // a later hop appends a third record; it must not inflate one
            // series but not the other): a task re-failed if it has ≥ 2
            // records, and its re-failure is closed if its LAST outage
            // recovered.
            let refailed: Vec<_> = driven
                .report
                .outages
                .iter()
                .filter(|o| o.records.len() >= 2)
                .collect();
            PolicyOutcome {
                fidelity_w1: scores[0],
                fidelity_w2: scores[1],
                refails: refailed.len(),
                second_recoveries: refailed
                    .iter()
                    .filter(|o| o.records.last().is_some_and(|r| r.recovered_at.is_some()))
                    .count(),
            }
        };
        Outcome {
            by_policy: vec![outcome(&static_run), outcome(&adaptive_run)],
            killed: trace.killed_nodes().len(),
        }
    });

    let cell_label = |corr: &f64| format!("corr:{corr}");

    let mut fidelity = Figure::new(
        "refail_sweep",
        "Output fidelity inside the second outage window (activated replicas killed)",
        "cascade spread",
        "output fidelity vs golden run",
    );
    for (pi, name) in roster.iter().enumerate() {
        let mut series = Series::new(*name);
        for (ci, corr) in cells.iter().enumerate() {
            series.push(cell_label(corr), outcomes[ci].by_policy[pi].fidelity_w2);
        }
        fidelity.series.push(series);
    }
    let mut w1 = Series::new("static (first window)");
    for (ci, corr) in cells.iter().enumerate() {
        w1.push(cell_label(corr), outcomes[ci].by_policy[0].fidelity_w1);
    }
    fidelity.series.push(w1);
    fidelity.note(
        "Two seeded cascade waves 30 s apart: wave 1 hits the first worker rack \
         (replicas take over), wave 2 hits the standby rack hosting those activated \
         replicas. Fidelity is measured inside each wave's own outage window \
         (boundaries from outage_windows over the static run's outage histories; \
         on-time per-batch sink volume vs a failure-free run, 5 s lateness budget), \
         so wave 1's recovered output cannot dilute wave 2's loss. Passive recovery \
         is held down: under the static policy a re-failed task only re-enters the \
         tentative-output path (honest re-detection and re-proxying — before the \
         lifecycle refactor it was silently counted as recovered and the sink \
         stalled); the domain-health policy additionally re-homes the dead standbys \
         and re-establishes replicas, closing the second outage.",
    );

    let mut histories = Figure::new(
        "refail_sweep_outages",
        "Re-failure histories behind the fidelity gap",
        "cascade spread",
        "count",
    );
    for (pi, name) in roster.iter().enumerate() {
        let mut refails = Series::new(format!("second outages ({name})"));
        let mut recovered = Series::new(format!("second recoveries ({name})"));
        for (ci, corr) in cells.iter().enumerate() {
            let o = &outcomes[ci].by_policy[pi];
            refails.push(cell_label(corr), o.refails as f64);
            recovered.push(cell_label(corr), o.second_recoveries as f64);
        }
        histories.series.push(refails);
        histories.series.push(recovered);
    }
    let mut killed = Series::new("nodes killed");
    for (ci, corr) in cells.iter().enumerate() {
        killed.push(cell_label(corr), outcomes[ci].killed as f64);
    }
    histories.series.push(killed);
    histories.note(
        "Second outages = tasks that re-failed at least once — an activated replica \
         died after takeover (an honest re-failure record; the pre-refactor runtime \
         recorded none). Second recoveries = re-failed tasks whose LAST outage \
         recovered within the run — only the domain-health policy can close them \
         here, by re-homing dead standbys and re-establishing replicas through \
         AdaptivePlanner::step. The kill set is identical for both policies in a \
         cell.",
    );

    vec![fidelity, histories]
}
