//! One module per reproduced figure, plus shared scenario-driving helpers.
//!
//! Experiments receive a [`RunCtx`] and submit their independent scenario
//! points — one simulated run, one topology's plans — as leaf jobs via
//! [`RunCtx::map`]. Each point derives its randomness from its own seed,
//! so results are identical for any worker count.

pub mod adaptive_sweep;
pub mod approx_sweep;
pub mod chaos_swarm;
pub mod corr_sweep;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod placement_sweep;
pub mod refail_sweep;
pub mod scale_sweep;
pub mod tentative;

use crate::runner::{RunCtx, RunLog, TraceLog};
use crate::stopwatch::Stopwatch;
use ppa_core::TaskSet;
use ppa_engine::{
    EngineConfig, EngineEvent, FailureTrace, FtMode, RunReport, Simulation, TraceSink,
};
use ppa_sim::{SimDuration, SimTime};
use ppa_workloads::{Fig6Config, Scenario};
use std::sync::{Arc, Mutex};

/// A fault-tolerance strategy of the §VI-A experiments.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Pure active replication with the given output-sync period.
    Active { sync_secs: u64 },
    /// Pure passive checkpointing at the given interval.
    Checkpoint { interval_secs: u64 },
    /// Storm's source replay.
    Storm,
    /// A partially active plan over passive checkpoints.
    Ppa { plan: TaskSet, interval_secs: u64 },
    /// Divergence-bounded approximate backups with lossy recovery.
    /// `interval_secs` only matters at `error_bound = 0`, where the mode
    /// normalizes to exact checkpointing at that interval (the parity
    /// anchor of the family).
    Approximate {
        interval_secs: u64,
        error_bound: u64,
    },
}

impl Strategy {
    /// Series/run label. Every parameter that distinguishes two variants of
    /// the same strategy appears in the label — PPA includes the active-task
    /// count and checkpoint interval so multi-interval series stay
    /// distinguishable in tables.
    pub fn label(&self) -> String {
        match self {
            Strategy::Active { sync_secs } => format!("Active-{sync_secs}s"),
            Strategy::Checkpoint { interval_secs } => format!("Checkpoint-{interval_secs}s"),
            Strategy::Storm => "Storm".to_string(),
            Strategy::Ppa {
                plan,
                interval_secs,
            } => {
                format!("PPA-{}t-{}s", plan.len(), interval_secs)
            }
            Strategy::Approximate {
                interval_secs,
                error_bound,
            } => format!("Approx-{interval_secs}s-e{error_bound}"),
        }
    }

    /// The engine configuration this strategy runs under (crate-wide so
    /// experiments can drive golden runs outside [`run_scenario`]).
    pub(crate) fn config(&self, n_tasks: usize, window: SimDuration, seed: u64) -> EngineConfig {
        let mut cfg = EngineConfig {
            seed,
            ..EngineConfig::default()
        };
        match self {
            Strategy::Active { sync_secs } => {
                cfg.mode = FtMode::active(n_tasks);
                cfg.replica_sync_interval = SimDuration::from_secs(*sync_secs);
            }
            Strategy::Checkpoint { interval_secs } => {
                cfg.mode = FtMode::checkpoint(n_tasks, SimDuration::from_secs(*interval_secs));
            }
            Strategy::Storm => {
                // Sources must retain at least the window for state rebuild.
                cfg.mode = FtMode::SourceReplay {
                    buffer: window + SimDuration::from_secs(5),
                };
            }
            Strategy::Ppa {
                plan,
                interval_secs,
            } => {
                cfg.mode = FtMode::ppa(plan.clone(), SimDuration::from_secs(*interval_secs));
            }
            Strategy::Approximate {
                interval_secs,
                error_bound,
            } => {
                cfg.mode = FtMode::approximate(
                    n_tasks,
                    SimDuration::from_secs(*interval_secs),
                    *error_bound,
                );
            }
        }
        cfg
    }
}

/// The degenerate trace of the §VI-A experiments: every hand-picked kill
/// set is one simultaneous failure event at `fail_at_secs` (an empty kill
/// set is the empty trace — a failure-free run).
pub fn kill_set_trace(fail_at_secs: u64, kill_nodes: Vec<usize>) -> FailureTrace {
    FailureTrace::once(SimTime::from_secs(fail_at_secs), kill_nodes)
}

/// Runs the Fig. 6 scenario under a strategy, replaying `trace`, logging
/// the run for the JSON reporter.
pub fn run_fig6(
    ctx: &RunCtx,
    cfg: &Fig6Config,
    strategy: &Strategy,
    trace: &FailureTrace,
    duration_secs: u64,
) -> RunReport {
    let scenario = ppa_workloads::fig6_scenario(cfg);
    run_scenario(
        ctx,
        &grid_label(cfg),
        &scenario,
        strategy,
        cfg.window,
        trace,
        duration_secs,
        cfg.seed,
    )
}

/// Runs any scenario under a strategy, replaying a failure trace, logging
/// the run (labelled `label`) for the JSON reporter. The logged failure
/// instant is the trace's first event; the logged kill set is the union of
/// all its events' nodes.
#[allow(clippy::too_many_arguments)]
pub fn run_scenario(
    ctx: &RunCtx,
    label: &str,
    scenario: &Scenario,
    strategy: &Strategy,
    window: SimDuration,
    trace: &FailureTrace,
    duration_secs: u64,
    seed: u64,
) -> RunReport {
    let n_tasks = scenario.graph().n_tasks();
    let config = strategy.config(n_tasks, window, seed);
    run_scenario_config(ctx, label, scenario, strategy, config, trace, duration_secs)
}

/// [`run_scenario`] with an explicit engine configuration, for experiments
/// that tweak knobs beyond what the strategy's derived configuration sets
/// (e.g. the placement sweep holding passive recovery down for
/// steady-state tentative sampling).
///
/// Runs go through the control-plane loop (`Simulation::drive`) with the
/// scenario's policy — the static no-op unless one is attached, which is
/// parity-tested byte-identical to the legacy `run_trace` path.
pub fn run_scenario_config(
    ctx: &RunCtx,
    label: &str,
    scenario: &Scenario,
    strategy: &Strategy,
    config: EngineConfig,
    trace: &FailureTrace,
    duration_secs: u64,
) -> RunReport {
    drive_scenario_config(ctx, label, scenario, strategy, config, trace, duration_secs).report
}

/// [`run_scenario_config`] returning the full [`ppa_engine::DriveReport`]
/// — control actions and control-plane CPU included — for experiments
/// that measure the control plane itself.
#[allow(clippy::too_many_arguments)]
pub fn drive_scenario_config(
    ctx: &RunCtx,
    label: &str,
    scenario: &Scenario,
    strategy: &Strategy,
    config: EngineConfig,
    trace: &FailureTrace,
    duration_secs: u64,
) -> ppa_engine::DriveReport {
    let mut config = config;
    if let Some(shards) = ctx.shards {
        // The harness-wide override; byte-identical output at any value.
        config.shards = shards;
    }
    let mut sim = Simulation::new(&scenario.query, scenario.placement.clone(), config);
    let buffer = ctx.tracing().then(|| {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        sim.set_trace_sink(Box::new(SharedSink(Arc::clone(&buffer))));
        buffer
    });
    let mut policy = scenario.make_policy();
    let watch = Stopwatch::start();
    let driven = sim
        .drive(
            &ppa_engine::FaultFeed::from_trace(trace.clone()),
            policy.as_mut(),
            SimTime::ZERO + SimDuration::from_secs(duration_secs),
        )
        .expect("scenario traces name nodes of their own cluster");
    let wall = watch.elapsed();
    let fail_at_secs = trace.first_at().map_or(0, |t| t.as_micros() / 1_000_000);
    let mut log = RunLog::from_report(
        label,
        strategy.label(),
        fail_at_secs,
        trace.killed_nodes(),
        &driven.report,
    );
    log.wall_s = wall.as_secs_f64();
    ctx.log_run(log);
    if let Some(buffer) = buffer {
        let events = std::mem::take(&mut *buffer.lock().expect("trace buffer poisoned"));
        ctx.log_trace(TraceLog {
            scenario: label.to_string(),
            strategy: strategy.label(),
            fail_at_s: fail_at_secs,
            kill_nodes: trace.killed_nodes(),
            events,
        });
    }
    driven
}

/// A [`TraceSink`] buffering into shared storage, so the harness can keep
/// reading the stream after the simulation consumed the boxed sink.
struct SharedSink(Arc<Mutex<Vec<(SimTime, EngineEvent)>>>);

impl TraceSink for SharedSink {
    fn record(&mut self, at: SimTime, event: &EngineEvent) {
        self.0
            .lock()
            .expect("trace buffer poisoned")
            .push((at, event.clone()));
    }
}

/// Mean recovery latency in seconds over the non-source tasks (the 15
/// synthetic tasks whose nodes the §VI-A experiments kill).
pub fn mean_synthetic_latency(report: &RunReport, scenario: &Scenario) -> f64 {
    let graph = scenario.graph();
    crate::latency_secs(report.mean_latency_of(|t| !graph.is_source_task(t)))
}

/// Completion latency of a correlated failure: detection → the *last*
/// matching task restored its pre-failure progress. This is the quantity
/// the paper's Fig. 8/10 bars measure — the whole failed set is only
/// "recovered" when its slowest, synchronization-gated member is.
pub fn completion_latency(
    report: &RunReport,
    mut include: impl FnMut(ppa_core::model::TaskIndex) -> bool,
) -> f64 {
    report
        .recoveries
        .iter()
        .filter(|r| include(r.task))
        .map(|r| r.latency().map_or(f64::NAN, |d| d.as_secs_f64()))
        .fold(f64::NAN, f64::max)
}

/// The (window, rate) grid of Fig. 7/8, scaled down in quick mode.
pub fn fig6_grid(quick: bool) -> Vec<Fig6Config> {
    let (windows, rates): (Vec<u64>, Vec<usize>) = if quick {
        (vec![10], vec![300, 600])
    } else {
        (vec![10, 30], vec![1000, 2000])
    };
    let mut out = Vec::new();
    for &w in &windows {
        for &r in &rates {
            out.push(Fig6Config {
                rate: r,
                window: SimDuration::from_secs(w),
                ..Fig6Config::default()
            });
        }
    }
    out
}

/// Grid point label matching the paper's x-axis ("win:10s, rate:1000tp/s").
pub fn grid_label(cfg: &Fig6Config) -> String {
    format!(
        "win:{}s rate:{}tp/s",
        cfg.window.as_micros() / 1_000_000,
        cfg.rate
    )
}

/// Failure/measurement schedule: the failure fires only after the window is
/// full and every checkpoint interval has produced at least one checkpoint.
pub fn schedule(quick: bool) -> (u64, u64) {
    if quick {
        (40, 130) // fail at 40s, run 130s
    } else {
        (70, 260)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppa_label_distinguishes_intervals_and_shares() {
        let a = Strategy::Ppa {
            plan: TaskSet::full(8),
            interval_secs: 5,
        };
        let b = Strategy::Ppa {
            plan: TaskSet::full(8),
            interval_secs: 30,
        };
        let c = Strategy::Ppa {
            plan: TaskSet::empty(8),
            interval_secs: 5,
        };
        assert_eq!(a.label(), "PPA-8t-5s");
        assert_ne!(a.label(), b.label(), "intervals must be distinguishable");
        assert_ne!(
            a.label(),
            c.label(),
            "active shares must be distinguishable"
        );
    }

    #[test]
    fn other_labels_are_stable() {
        assert_eq!(Strategy::Active { sync_secs: 5 }.label(), "Active-5s");
        assert_eq!(
            Strategy::Checkpoint { interval_secs: 15 }.label(),
            "Checkpoint-15s"
        );
        assert_eq!(Strategy::Storm.label(), "Storm");
        assert_eq!(
            Strategy::Approximate {
                interval_secs: 5,
                error_bound: 2000
            }
            .label(),
            "Approx-5s-e2000"
        );
    }
}
