//! `scale_sweep`: event-loop throughput at (and beyond) the paper's §VI
//! cluster scale, across a shard count × cluster size grid.
//!
//! Every cell drives one failure-free run of a *homogeneous* wide
//! topology — `S(W) → O1(W) → O2(W)` with `OneToOne` edges, so every node
//! carries the same work and every batch instant produces a span of
//! simultaneous per-node events as wide as the cluster. That shape is the
//! best case for the sharded event loop (`EngineConfig::shards`), and the
//! honest one for the paper's setting: §VI runs ~100 homogeneous workers.
//!
//! The *deterministic* outputs of each cell — events processed and tuples
//! moved — are the figure's series. Rows that differ only in shard count
//! must show identical values: the table itself is a determinism check,
//! not just a throughput claim. Wall-clock throughput (`events_per_sec`,
//! `tuples_per_sec`) is deliberately kept out of stdout; it lands in the
//! timed section of the `--json` report (BENCH_repro.json), where
//! non-deterministic timings belong.

use super::{drive_scenario_config, Strategy};
use crate::runner::RunCtx;
use crate::{Figure, Series};
use ppa_core::model::{OperatorSpec, Partitioning, TaskGraph};
use ppa_engine::{
    Cluster, EngineConfig, FailureTrace, PlacementStrategy, QueryBuilder, RoundRobin, SourceGen,
    Tuple,
};
use ppa_sim::SimDuration;
use ppa_workloads::synthetic::SyntheticOp;
use ppa_workloads::Scenario;

/// Workload seed (shared with the Fig. 6 experiments).
const SEED: u64 = 42;
/// Sliding-window length of the synthetic operators, in batches.
const WINDOW_BATCHES: u64 = 4;
/// Selectivity of each synthetic operator.
const SELECTIVITY: f64 = 0.5;
/// Rack size of the swept clusters (fault domains are unused here — the
/// sweep is failure-free — but `racked` keeps the cluster shape honest).
const RACK_SIZE: usize = 8;
/// Checkpoint interval far past every cell's horizon: the run carries the
/// checkpointing *mode* (replica slots, master bookkeeping) but spends its
/// event budget purely on data movement.
const NO_CHECKPOINTS_SECS: u64 = 100_000;

/// One grid cell: a cluster, a topology width, a load, and a shard count.
#[derive(Debug, Clone, Copy)]
pub struct ScaleSpec {
    /// Worker nodes in the cluster.
    pub workers: usize,
    /// Standby nodes (replica slots only; never activated here).
    pub standby: usize,
    /// Parallelism of each of the three operators (tasks = 3 × width).
    pub width: usize,
    /// Tuples per source task per batch.
    pub rate: usize,
    /// Simulated run length in seconds (= batches at the 1 s interval).
    pub duration_secs: u64,
    /// `EngineConfig::shards` for this cell.
    pub shards: usize,
}

/// A deterministic source: `rate` key-only tuples per batch, keys mixed
/// from (task, batch, index) so no two tuples collide across the run.
struct ScaleSource {
    per_batch: usize,
    task: u64,
}

impl SourceGen for ScaleSource {
    fn batch(&mut self, batch: u64) -> Vec<Tuple> {
        (0..self.per_batch as u64)
            .map(|i| Tuple::key_only((self.task << 40) ^ (batch << 20) ^ i))
            .collect()
    }
}

/// Builds a cell's scenario plus the strategy/config driving it. Public
/// so the throughput-gate test can time the identical workload directly.
pub fn build(spec: &ScaleSpec) -> (Scenario, Strategy, EngineConfig) {
    let width = spec.width;
    let rate = spec.rate;
    let mut q = QueryBuilder::new();
    let src = q.add_source(OperatorSpec::source("S", width, rate as f64), move |task| {
        Box::new(ScaleSource {
            per_batch: rate,
            task: task as u64,
        })
    });
    let o1 = q.add_operator(OperatorSpec::map("O1", width, SELECTIVITY), move |_| {
        Box::new(SyntheticOp::new(WINDOW_BATCHES, SELECTIVITY))
    });
    let o2 = q.add_operator(OperatorSpec::map("O2", width, SELECTIVITY), move |_| {
        Box::new(SyntheticOp::new(WINDOW_BATCHES, SELECTIVITY))
    });
    q.connect(src, o1, Partitioning::OneToOne)
        .expect("scale chain is acyclic");
    q.connect(o1, o2, Partitioning::OneToOne)
        .expect("scale chain is acyclic");
    let query = q.build().expect("scale topology is valid");

    let cluster =
        Cluster::racked(spec.workers, spec.standby, RACK_SIZE).expect("positive rack size");
    let graph = TaskGraph::new(query.topology().clone());
    let placement = RoundRobin
        .place(&graph, &cluster)
        .expect("wide chain fits the swept cluster");
    let scenario = Scenario {
        query,
        placement,
        // Failure-free: there is no kill set to speak of.
        worker_kill_set: Vec::new(),
        placement_strategy: "RoundRobin".to_string(),
        policy: None,
    };

    let n_tasks = scenario.graph().n_tasks();
    let strategy = Strategy::Checkpoint {
        interval_secs: NO_CHECKPOINTS_SECS,
    };
    let mut config = strategy.config(n_tasks, SimDuration::from_secs(WINDOW_BATCHES), SEED);
    config.shards = spec.shards;
    // The default 30 ms per-batch overhead is calibrated for ~1 task per
    // node (README §Design notes); the big cells here pack ~26 tasks per
    // node and would saturate on overhead alone. Scale it down so load
    // stays proportional to tuples, which is what the sweep measures.
    config.costs.batch_overhead = SimDuration::from_millis(2);
    (scenario, strategy, config)
}

/// The shard × cluster grid. Quick keeps one paper-scale cluster and the
/// `{1, 4}` shard endpoints; full adds a hundreds-of-nodes cell with
/// ~10⁴ tasks and the intermediate shard counts.
fn cells(quick: bool) -> Vec<ScaleSpec> {
    let grids: &[(usize, usize, usize, usize, u64)] = if quick {
        &[(96, 12, 96, 150, 10)]
    } else {
        &[(96, 12, 96, 150, 12), (384, 48, 3334, 100, 12)]
    };
    let shard_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut out = Vec::new();
    for &(workers, standby, width, rate, duration_secs) in grids {
        for &shards in shard_counts {
            out.push(ScaleSpec {
                workers,
                standby,
                width,
                rate,
                duration_secs,
                shards,
            });
        }
    }
    out
}

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let mut fig = Figure::new(
        "scale_sweep",
        "Event-loop throughput at scale: shard count × cluster size",
        "cluster / shards",
        "count",
    );
    fig.note(
        "Deterministic run outputs only: rows differing only in `s=N` (the \
         shard count) must be identical — the table doubles as a determinism \
         check. Wall-clock events/sec and tuples/sec are in the --json \
         report's timed section.",
    );
    let mut events = Series::new("events");
    let mut tuples = Series::new("tuples moved");
    // Cells run sequentially on purpose (not via `ctx.map`): each cell's
    // wall clock feeds the JSON throughput numbers, and concurrent cells
    // would contend with each other's shard workers.
    for spec in cells(ctx.quick) {
        let (scenario, strategy, config) = build(&spec);
        let n_tasks = scenario.graph().n_tasks();
        let tick = format!("{}w/{}t s={}", spec.workers, n_tasks, spec.shards);
        let driven = drive_scenario_config(
            ctx,
            &format!(
                "workers:{} tasks:{} shards:{}",
                spec.workers, n_tasks, spec.shards
            ),
            &scenario,
            &strategy,
            config,
            &FailureTrace::new(),
            spec.duration_secs,
        );
        events.push(&tick, driven.report.events as f64);
        tuples.push(&tick, driven.report.tuples_moved as f64);
    }
    fig.series.push(events);
    fig.series.push(tuples);
    vec![fig]
}
