//! The conclusion's headline claim: "upon a correlated failure, PPA can
//! start producing tentative outputs up to 10 times faster than the
//! completion of recovering all the failed tasks."
//!
//! One PPA-0.5 run per checkpoint interval: compare the time from failure
//! detection to (a) the first tentative sink output and (b) the completion
//! of the last passive recovery.

use super::{kill_set_trace, run_fig6, schedule, Strategy};
use crate::runner::RunCtx;
use crate::{Figure, Series};
use ppa_core::{PlanContext, Planner, StructureAwarePlanner, TaskSet};
use ppa_sim::SimDuration;
use ppa_workloads::Fig6Config;

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;
    let intervals: Vec<u64> = if quick { vec![15] } else { vec![5, 15, 30] };
    let rate = if quick { 300 } else { 1000 };
    let (fail_at, duration) = schedule(quick);
    let cfg = Fig6Config {
        rate,
        window: SimDuration::from_secs(30),
        ..Fig6Config::default()
    };

    // Leaf phase 1 — the PPA-0.5 plan.
    let plan: TaskSet = ctx
        .map(vec![()], |()| {
            let scenario = ppa_workloads::fig6_scenario(&cfg);
            let n = scenario.graph().n_tasks();
            let cx = PlanContext::new(scenario.query.topology()).expect("fig6 plans");
            StructureAwarePlanner::default()
                .plan(&cx, n / 2)
                .expect("SA plan")
                .tasks
        })
        .pop()
        .expect("one plan");

    // Leaf phase 2 — one run per checkpoint interval.
    let outcomes: Vec<(f64, f64)> = ctx.map(intervals.clone(), |interval| {
        let scenario = ppa_workloads::fig6_scenario(&cfg);
        let report = run_fig6(
            ctx,
            &cfg,
            &Strategy::Ppa {
                plan: plan.clone(),
                interval_secs: interval,
            },
            &kill_set_trace(fail_at, scenario.worker_kill_set.clone()),
            duration,
        );
        let detected = report
            .recoveries
            .iter()
            .map(|r| r.detected_at)
            .min()
            .expect("failures were injected");
        let first_tentative = report
            .first_tentative_after(detected)
            .map(|t| t.since(detected).as_secs_f64())
            .unwrap_or(f64::NAN);
        let full = report
            .full_recovery_at()
            .map(|t| t.since(detected).as_secs_f64())
            .unwrap_or(f64::NAN);
        (first_tentative, full)
    });

    let mut fig = Figure::new(
        "tentative",
        format!("Tentative output vs full recovery (PPA-0.5, rate {rate} tp/s)"),
        "checkpoint interval (s)",
        "seconds after detection / speedup",
    );
    let mut s_tentative = Series::new("first tentative output (s)");
    let mut s_full = Series::new("full recovery (s)");
    let mut s_speedup = Series::new("speedup (x)");
    for (ii, &interval) in intervals.iter().enumerate() {
        let (first_tentative, full) = outcomes[ii];
        let x = format!("{interval}");
        s_tentative.push(x.clone(), first_tentative);
        s_full.push(x.clone(), full);
        s_speedup.push(x, full / first_tentative.max(1e-9));
    }
    fig.series = vec![s_tentative, s_full, s_speedup];
    fig.note(
        "Expected shape (paper's conclusion): tentative outputs begin roughly one \
         batch after detection, an order of magnitude before the last passive \
         recovery completes — the gap widens with the checkpoint interval.",
    );
    vec![fig]
}
