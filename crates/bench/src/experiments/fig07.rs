//! Fig. 7: recovery latency of a *single node* failure on the Fig. 6
//! topology, across fault-tolerance strategies, window intervals and input
//! rates. The failed task's location in the topology matters (especially
//! for Storm), so — like the paper — we average over failures injected at
//! different operators.

use super::{fig6_grid, grid_label, kill_set_trace, run_scenario, schedule, Strategy};
use crate::runner::RunCtx;
use crate::{Figure, Series};

/// Synthetic tasks whose hosting node is killed, one run each: the first
/// task of O1, O2, O3 and the O4 sink (global task ids on the Fig. 6
/// topology: sources are 0..16, O1 16..24, O2 24..28, O3 28..30, O4 30).
fn locations(quick: bool) -> Vec<usize> {
    if quick {
        vec![16, 30]
    } else {
        vec![16, 24, 28, 30]
    }
}

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;
    let strategies = [
        Strategy::Active { sync_secs: 5 },
        Strategy::Active { sync_secs: 30 },
        Strategy::Checkpoint { interval_secs: 5 },
        Strategy::Checkpoint { interval_secs: 15 },
        Strategy::Checkpoint { interval_secs: 30 },
        Strategy::Storm,
    ];
    let (fail_at, duration) = schedule(quick);
    let grid = fig6_grid(quick);
    let locs = locations(quick);

    // One leaf job per (strategy, grid point, failure location); each is an
    // independent simulated run.
    let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
    for si in 0..strategies.len() {
        for ci in 0..grid.len() {
            for &task in &locs {
                jobs.push((si, ci, task));
            }
        }
    }
    let latencies: Vec<Option<f64>> = ctx.map(jobs, |(si, ci, task)| {
        let cfg = &grid[ci];
        let scenario = ppa_workloads::fig6_scenario(cfg);
        let node = scenario.placement.primary[task];
        let report = run_scenario(
            ctx,
            &grid_label(cfg),
            &scenario,
            &strategies[si],
            cfg.window,
            &kill_set_trace(fail_at, vec![node]),
            duration,
            cfg.seed,
        );
        report.mean_recovery_latency().map(|l| l.as_secs_f64())
    });

    let mut fig = Figure::new(
        "fig07",
        "Recovery latency of single node failure",
        "configuration",
        "recovery latency (s)",
    );
    for (si, strategy) in strategies.iter().enumerate() {
        let mut series = Series::new(strategy.label());
        for (ci, cfg) in grid.iter().enumerate() {
            let base = (si * grid.len() + ci) * locs.len();
            let vals: Vec<f64> = (0..locs.len())
                .filter_map(|k| latencies[base + k])
                .collect();
            let mean = if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            series.push(grid_label(cfg), mean);
        }
        fig.series.push(series);
    }
    fig.note(
        "Expected shape (paper): Active ≪ Checkpoint, insensitive to window/rate; \
         Checkpoint grows with rate and checkpoint interval; Storm grows with window \
         and usually exceeds Checkpoint.",
    );
    vec![fig]
}
