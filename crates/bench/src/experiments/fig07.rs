//! Fig. 7: recovery latency of a *single node* failure on the Fig. 6
//! topology, across fault-tolerance strategies, window intervals and input
//! rates. The failed task's location in the topology matters (especially
//! for Storm), so — like the paper — we average over failures injected at
//! different operators.

use super::{fig6_grid, grid_label, run_fig6, schedule, Strategy};
use crate::{Figure, Series};

/// Synthetic tasks whose hosting node is killed, one run each: the first
/// task of O1, O2, O3 and the O4 sink (global task ids on the Fig. 6
/// topology: sources are 0..16, O1 16..24, O2 24..28, O3 28..30, O4 30).
fn locations(quick: bool) -> Vec<usize> {
    if quick {
        vec![16, 30]
    } else {
        vec![16, 24, 28, 30]
    }
}

pub fn run(quick: bool) -> Vec<Figure> {
    let strategies = [
        Strategy::Active { sync_secs: 5 },
        Strategy::Active { sync_secs: 30 },
        Strategy::Checkpoint { interval_secs: 5 },
        Strategy::Checkpoint { interval_secs: 15 },
        Strategy::Checkpoint { interval_secs: 30 },
        Strategy::Storm,
    ];
    let (fail_at, duration) = schedule(quick);

    let mut fig = Figure::new(
        "fig07",
        "Recovery latency of single node failure",
        "configuration",
        "recovery latency (s)",
    );
    for strategy in &strategies {
        let mut series = Series::new(strategy.label());
        for cfg in fig6_grid(quick) {
            let scenario = ppa_workloads::fig6_scenario(&cfg);
            let mut latencies = Vec::new();
            for &task in &locations(quick) {
                let node = scenario.placement.primary[task];
                let report = run_fig6(&cfg, strategy, vec![node], fail_at, duration);
                if let Some(l) = report.mean_recovery_latency() {
                    latencies.push(l.as_secs_f64());
                }
            }
            let mean = if latencies.is_empty() {
                f64::NAN
            } else {
                latencies.iter().sum::<f64>() / latencies.len() as f64
            };
            series.push(grid_label(&cfg), mean);
        }
        fig.series.push(series);
    }
    fig.note(
        "Expected shape (paper): Active ≪ Checkpoint, insensitive to window/rate; \
         Checkpoint grows with rate and checkpoint interval; Storm grows with window \
         and usually exceeds Checkpoint.",
    );
    vec![fig]
}
