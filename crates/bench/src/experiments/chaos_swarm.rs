//! `chaos_swarm`: the seeded chaos swarm (`ppa-chaos`) as a harness
//! experiment — N seeded scenarios with buggified heartbeats and restores,
//! every run checked against cross-layer engine invariants instead of
//! golden outputs, failures shrunk to minimal replayable repros.
//!
//! Stdout carries only the aggregate verdict table, byte-identical for any
//! `--jobs` or `--shards`. On violation the experiment writes each failing
//! seed's shrunk repro under `chaos-repro/seed-<seed>/` (kill trace,
//! chaos schedule, JSONL event stream, violation list) and panics, so a CI
//! run fails loudly with the artifacts already on disk.

use crate::runner::RunCtx;
use crate::{Figure, Series};
use ppa_chaos::{run_seed, SeedOutcome, SwarmReport};
use std::io;
use std::path::{Path, PathBuf};

/// Default root seed (`--seed` overrides): a nod to the paper's venue.
pub const DEFAULT_ROOT_SEED: u64 = 0x1CDE_2016;
/// Scenarios at CI scale…
const QUICK_SEEDS: usize = 200;
/// …and at paper scale (the acceptance bar: ≥ 1000 clean seeds).
const FULL_SEEDS: usize = 1000;

/// Runs the swarm on the harness job pool: seeds fan out as leaf jobs and
/// outcomes reassemble in index order, so the report is identical to the
/// sequential [`ppa_chaos::run_swarm`] reference for any worker count.
pub fn swarm(ctx: &RunCtx, root_seed: u64, n: usize) -> SwarmReport {
    let shards = ctx.shards.unwrap_or(1);
    let outcomes = ctx.map((0..n).collect(), |index| {
        run_seed(root_seed, index, shards)
            .unwrap_or_else(|e| panic!("chaos seed index {index} was rejected outright: {e}"))
    });
    SwarmReport {
        root_seed,
        outcomes,
    }
}

/// Writes one failing seed's repro artifacts, returning the directory.
fn write_repro(dir: &Path, outcome: &SeedOutcome) -> io::Result<PathBuf> {
    let seed_dir = dir.join(format!("seed-{:016x}", outcome.seed));
    std::fs::create_dir_all(&seed_dir)?;
    let mut violations = String::new();
    for v in &outcome.violations {
        let task = v.task.map_or(String::new(), |t| format!(" task={t}"));
        violations.push_str(&format!(
            "{} at {}{}: {}\n",
            v.invariant, v.at, task, v.detail
        ));
    }
    std::fs::write(seed_dir.join("violations.txt"), violations)?;
    if let Some(repro) = &outcome.repro {
        std::fs::write(seed_dir.join("trace.txt"), &repro.trace_text)?;
        std::fs::write(seed_dir.join("schedule.txt"), &repro.schedule_text)?;
        std::fs::write(seed_dir.join("events.jsonl"), &repro.events_jsonl)?;
    }
    Ok(seed_dir)
}

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let root_seed = ctx.seed.unwrap_or(DEFAULT_ROOT_SEED);
    let n = ctx
        .swarm
        .unwrap_or(if ctx.quick { QUICK_SEEDS } else { FULL_SEEDS });
    let report = swarm(ctx, root_seed, n);

    let mut fig = Figure::new(
        "chaos_swarm",
        "Seeded chaos swarm: invariant verdicts over buggified scenarios",
        "aggregate",
        "count",
    );
    fig.note(format!(
        "Every scenario is a pure function of (root seed {root_seed}, index): \
         topology, placement, ft-mode, failure process and buggify schedule \
         all derive from one seeded stream, so this table is byte-identical \
         for any --jobs or --shards. Runs are checked against engine \
         invariants (outage lifecycle, report/trace/metrics agreement, sink \
         exactly-once, closed-or-explained outages), not golden outputs; a \
         violating seed shrinks to a replayable repro under chaos-repro/."
    ));
    let sum = |f: fn(&SeedOutcome) -> usize| report.outcomes.iter().map(f).sum::<usize>() as f64;
    let mut totals = Series::new("total");
    totals.push("scenarios", report.outcomes.len() as f64);
    totals.push(
        "clean",
        (report.outcomes.len() - report.failed().len()) as f64,
    );
    totals.push("violating", report.failed().len() as f64);
    totals.push("engine events traced", sum(|o| o.events));
    totals.push("outages opened", sum(|o| o.outages_opened));
    totals.push("outages closed", sum(|o| o.outages_closed));
    totals.push("chaos events fired", sum(|o| o.chaos_fired));
    totals.push("kills suppressed by guard", sum(|o| o.suppressed_kills));
    fig.series.push(totals);

    let failed = report.failed();
    if !failed.is_empty() {
        let dir = PathBuf::from("chaos-repro");
        let mut dirs = Vec::new();
        for outcome in report.outcomes.iter().filter(|o| !o.ok()) {
            let seed_dir =
                write_repro(&dir, outcome).expect("chaos-repro directory must be writable");
            dirs.push(seed_dir.display().to_string());
        }
        panic!(
            "chaos swarm (root seed {root_seed}) found invariant violations in \
             {} of {n} seeds (indexes {failed:?}); shrunk repros written under: {}",
            failed.len(),
            dirs.join(", "),
        );
    }
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Gate;
    use std::sync::Arc;

    #[test]
    fn swarm_outcomes_match_the_sequential_reference_for_any_job_count() {
        let a = swarm(&RunCtx::serial(true), 2024, 12);
        let b = swarm(&RunCtx::new(true, Arc::new(Gate::new(4))), 2024, 12);
        assert_eq!(a, b, "verdicts differ between --jobs 1 and --jobs 4");
        assert_eq!(a.render(), b.render(), "rendering differs across jobs");
        let reference = ppa_chaos::run_swarm(2024, 12, 1)
            .expect("the sequential reference accepts every generated seed");
        assert_eq!(a, reference, "pooled fan-out diverged from run_swarm");
        assert_eq!(a.failed(), Vec::<usize>::new(), "{}", a.render());
    }
}
