//! Fig. 10: recovery latency of a correlated failure under PPA plans with
//! different active-replication shares — PPA-1.0 (all tasks), PPA-0.5
//! (half, chosen by the structure-aware planner), PPA-0 (checkpoints only).
//! `PPA-0.5-active` reports the latency of just the actively replicated
//! tasks inside the PPA-0.5 run. Reported latency: per-task mean (the
//! metric that separates PPA-0.5 from PPA-0; Fig. 8 reports the
//! synchronization-gated completion instead).

use super::{kill_set_trace, run_fig6, schedule, Strategy};
use crate::runner::RunCtx;
use crate::{latency_secs, Figure, Series};
use ppa_core::{PlanContext, Planner, StructureAwarePlanner, TaskSet};
use ppa_sim::SimDuration;
use ppa_workloads::Fig6Config;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Share {
    Full,
    Half,
    Zero,
}

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;
    let intervals: Vec<u64> = vec![5, 15, 30];
    let rates: Vec<usize> = if quick { vec![300] } else { vec![1000, 2000] };
    let (fail_at, duration) = schedule(quick);

    let cfgs: Vec<Fig6Config> = rates
        .iter()
        .map(|&rate| Fig6Config {
            rate,
            window: SimDuration::from_secs(30),
            ..Fig6Config::default()
        })
        .collect();

    // Leaf phase 1 — PPA-0.5 plans: half the tasks, chosen by the
    // structure-aware planner (MC-tree enumeration is real work).
    let half_plans: Vec<TaskSet> = ctx.map((0..cfgs.len()).collect(), |ri| {
        let scenario = ppa_workloads::fig6_scenario(&cfgs[ri]);
        let n = scenario.graph().n_tasks();
        let cx = PlanContext::new(scenario.query.topology()).expect("fig6 plans");
        StructureAwarePlanner::default()
            .plan(&cx, n / 2)
            .expect("SA plan")
            .tasks
    });

    // Leaf phase 2 — one run per (rate, interval, share).
    let shares = [Share::Full, Share::Half, Share::Zero];
    let mut jobs: Vec<(usize, u64, Share)> = Vec::new();
    for ri in 0..cfgs.len() {
        for &interval in &intervals {
            for &share in &shares {
                jobs.push((ri, interval, share));
            }
        }
    }
    // Each job yields (mean latency, mean latency of the active subset —
    // `Some` only for the Half share).
    let outcomes: Vec<(f64, Option<f64>)> = ctx.map(jobs, |(ri, interval, share)| {
        let cfg = &cfgs[ri];
        let scenario = ppa_workloads::fig6_scenario(cfg);
        let graph = scenario.graph();
        let n = graph.n_tasks();
        let plan = match share {
            Share::Full => TaskSet::full(n),
            Share::Half => half_plans[ri].clone(),
            Share::Zero => TaskSet::empty(n),
        };
        let report = run_fig6(
            ctx,
            cfg,
            &Strategy::Ppa {
                plan: plan.clone(),
                interval_secs: interval,
            },
            &kill_set_trace(fail_at, scenario.worker_kill_set.clone()),
            duration,
        );
        let mean = latency_secs(report.mean_latency_of(|t| !graph.is_source_task(t)));
        let active = (share == Share::Half).then(|| {
            latency_secs(report.mean_latency_of(|t| !graph.is_source_task(t) && plan.contains(t)))
        });
        (mean, active)
    });

    let mut figures = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        let mut fig = Figure::new(
            "fig10",
            format!("Correlated-failure recovery with PPA (rate {rate} tp/s, window 30s)"),
            "checkpoint interval (s)",
            "recovery latency (s)",
        );
        let mut s_full = Series::new("PPA-1.0");
        let mut s_half_active = Series::new("PPA-0.5-active");
        let mut s_half = Series::new("PPA-0.5");
        let mut s_zero = Series::new("PPA-0");
        for (ii, &interval) in intervals.iter().enumerate() {
            let x = format!("{interval}");
            let base = (ri * intervals.len() + ii) * shares.len();
            let (full, _) = outcomes[base];
            let (half, half_active) = outcomes[base + 1];
            let (zero, _) = outcomes[base + 2];
            s_full.push(x.clone(), full);
            s_half_active.push(
                x.clone(),
                half_active.expect("Half yields the active subset"),
            );
            s_half.push(x.clone(), half);
            s_zero.push(x, zero);
        }
        fig.series = vec![s_full, s_half_active, s_half, s_zero];
        fig.note(
            "Expected shape (paper): PPA-1.0 < PPA-0.5 < PPA-0 overall; \
             PPA-0.5-active tracks (and slightly beats) PPA-1.0 because only \
             half as many replicas take over.",
        );
        figures.push(fig);
    }
    figures
}
