//! Fig. 10: recovery latency of a correlated failure under PPA plans with
//! different active-replication shares — PPA-1.0 (all tasks), PPA-0.5
//! (half, chosen by the structure-aware planner), PPA-0 (checkpoints only).
//! `PPA-0.5-active` reports the latency of just the actively replicated
//! tasks inside the PPA-0.5 run. Reported latency: per-task mean (the
//! metric that separates PPA-0.5 from PPA-0; Fig. 8 reports the
//! synchronization-gated completion instead).

use super::{run_fig6, schedule, Strategy};
use crate::{latency_secs, Figure, Series};
use ppa_core::{PlanContext, Planner, StructureAwarePlanner, TaskSet};
use ppa_sim::SimDuration;
use ppa_workloads::Fig6Config;

pub fn run(quick: bool) -> Vec<Figure> {
    let intervals: Vec<u64> = vec![5, 15, 30];
    let rates: Vec<usize> = if quick { vec![300] } else { vec![1000, 2000] };
    let (fail_at, duration) = schedule(quick);

    let mut figures = Vec::new();
    for &rate in &rates {
        let cfg = Fig6Config {
            rate,
            window: SimDuration::from_secs(30),
            ..Fig6Config::default()
        };
        let scenario = ppa_workloads::fig6_scenario(&cfg);
        let graph = scenario.graph();
        let n = graph.n_tasks();

        // PPA-0.5: half the tasks, chosen by the structure-aware planner.
        let cx = PlanContext::new(scenario.query.topology()).expect("fig6 plans");
        let half_plan = StructureAwarePlanner::default()
            .plan(&cx, n / 2)
            .expect("SA plan")
            .tasks;

        let mut fig = Figure::new(
            "fig10",
            format!("Correlated-failure recovery with PPA (rate {rate} tp/s, window 30s)"),
            "checkpoint interval (s)",
            "recovery latency (s)",
        );
        let mut s_full = Series::new("PPA-1.0");
        let mut s_half_active = Series::new("PPA-0.5-active");
        let mut s_half = Series::new("PPA-0.5");
        let mut s_zero = Series::new("PPA-0");

        for &interval in &intervals {
            let x = format!("{interval}");
            // PPA-1.0.
            let report = run_fig6(
                &cfg,
                &Strategy::Ppa { plan: TaskSet::full(n), interval_secs: interval },
                scenario.worker_kill_set.clone(),
                fail_at,
                duration,
            );
            s_full.push(
                x.clone(),
                latency_secs(report.mean_latency_of(|t| !graph.is_source_task(t))),
            );

            // PPA-0.5 (one run, two series).
            let report = run_fig6(
                &cfg,
                &Strategy::Ppa { plan: half_plan.clone(), interval_secs: interval },
                scenario.worker_kill_set.clone(),
                fail_at,
                duration,
            );
            s_half.push(
                x.clone(),
                latency_secs(report.mean_latency_of(|t| !graph.is_source_task(t))),
            );
            s_half_active.push(
                x.clone(),
                latency_secs(report.mean_latency_of(|t| {
                    !graph.is_source_task(t) && half_plan.contains(t)
                })),
            );

            // PPA-0.
            let report = run_fig6(
                &cfg,
                &Strategy::Ppa { plan: TaskSet::empty(n), interval_secs: interval },
                scenario.worker_kill_set.clone(),
                fail_at,
                duration,
            );
            s_zero.push(
                x.clone(),
                latency_secs(report.mean_latency_of(|t| !graph.is_source_task(t))),
            );
        }
        fig.series = vec![s_full, s_half_active, s_half, s_zero];
        fig.note(
            "Expected shape (paper): PPA-1.0 < PPA-0.5 < PPA-0 overall; \
             PPA-0.5-active tracks (and slightly beats) PPA-1.0 because only \
             half as many replicas take over.",
        );
        figures.push(fig);
    }
    figures
}
