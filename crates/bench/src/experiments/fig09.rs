//! Fig. 9: CPU cost of maintaining checkpoints — the ratio of checkpoint
//! CPU to normal processing CPU per task, as a function of the checkpoint
//! interval (1/5/15/30 s) and the input rate, window fixed at 30 s.

use super::{run_fig6, Strategy};
use crate::runner::RunCtx;
use crate::{Figure, Series};
use ppa_engine::FailureTrace;
use ppa_sim::SimDuration;
use ppa_workloads::Fig6Config;

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;
    let intervals: Vec<u64> = vec![1, 5, 15, 30];
    let rates: Vec<usize> = if quick {
        vec![300, 600]
    } else {
        vec![1000, 2000]
    };
    let duration = if quick { 60 } else { 120 };

    // One leaf job per (rate, interval): a failure-free run.
    let mut jobs: Vec<(usize, u64)> = Vec::new();
    for &rate in &rates {
        for &interval in &intervals {
            jobs.push((rate, interval));
        }
    }
    let ratios: Vec<f64> = ctx.map(jobs, |(rate, interval)| {
        let cfg = Fig6Config {
            rate,
            window: SimDuration::from_secs(30),
            ..Fig6Config::default()
        };
        let report = run_fig6(
            ctx,
            &cfg,
            &Strategy::Checkpoint {
                interval_secs: interval,
            },
            &FailureTrace::new(),
            duration,
        );
        // The paper's metric is per *processing* task; source tasks have
        // no window state and would dilute the mean.
        let scenario = ppa_workloads::fig6_scenario(&cfg);
        let graph = scenario.graph();
        let ratios: Vec<f64> = (0..graph.n_tasks())
            .filter(|&t| !graph.is_source_task(ppa_core::model::TaskIndex(t)))
            .map(|t| report.cpu[t].checkpoint_ratio())
            .filter(|r| *r > 0.0)
            .collect();
        if ratios.is_empty() {
            f64::NAN
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    });

    let mut fig = Figure::new(
        "fig09",
        "CPU usage of maintaining checkpoints (window 30s)",
        "checkpoint interval (s)",
        "checkpoint CPU / processing CPU",
    );
    for (ri, &rate) in rates.iter().enumerate() {
        let mut series = Series::new(format!("{rate}_tuples/s"));
        for (ii, &interval) in intervals.iter().enumerate() {
            series.push(format!("{interval}"), ratios[ri * intervals.len() + ii]);
        }
        fig.series.push(series);
    }
    fig.note(
        "Expected shape (paper): the ratio falls sharply with longer intervals \
         (1s checkpoints are prohibitively expensive) and rises with the input \
         rate, since the state is window × rate tuples.",
    );
    vec![fig]
}
