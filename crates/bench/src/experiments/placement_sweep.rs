//! `placement_sweep`: does *where* tasks land matter as much as *what* is
//! replicated? The paper plans replication against correlated failures
//! (§IV) but places tasks by hand; this experiment sweeps the placement
//! strategy itself under the `corr_sweep` burst/cascade grid.
//!
//! Every cell `(burst, corr)` builds one cluster (12 workers + 12
//! standbys, racks of `burst` consecutive nodes spanning the
//! worker/standby boundary) and generates one seeded cascade trace from
//! that cluster's fault-domain tree — identical for every placement
//! strategy, so strategies are compared on identical failures. The origin
//! rack is pinned to the first (always-worker) rack so every cell strikes
//! comparable infrastructure. Each strategy then places the Fig. 6 query
//! onto the cluster:
//!
//! * **RoundRobin** — the engine's historical topology-blind default;
//! * **Packed** — fill nodes sequentially (the adversarial baseline:
//!   whole operator layers share racks);
//! * **DomainSpread** — anti-affinity against the cell's racks: MC-trees
//!   spread across domains, every primary/standby pair split across
//!   domains.
//!
//! All runs use the same fault-tolerance strategy — a PPA plan with an
//! `n/2` budget planned via `Placement::plan_context`, i.e. against the
//! correlated-failure sets of that placement's *actual* node → domain
//! mapping. As in the Fig. 12/13 accuracy experiments (README.md §Design
//! notes), passive recovery is held down so the run samples the plan's
//! *steady-state* tentative quality under that placement: replicas take
//! over, everything else stays dead, and the sink keeps producing
//! degraded output through proxy punctuations. Reported: post-burst
//! output fidelity (on-time sink volume vs a golden run of the same
//! placement, so placement-induced CPU contention cancels out) and the
//! structural surviving-MC-tree fraction that explains it.

use super::{run_scenario_config, schedule, Strategy};
use crate::runner::RunCtx;
use crate::{Figure, Series};
use ppa_core::{enumerate_mc_trees, McTreeLimits, Planner, StructureAwarePlanner, TaskSet};
use ppa_engine::{
    Cluster, DomainSpread, FailureTrace, Packed, Placement, PlacementStrategy, RoundRobin,
    Simulation,
};
use ppa_faults::{CascadeProcess, FailureProcess};
use ppa_sim::{SimDuration, SimTime};
use ppa_workloads::{batch_fidelity, Fig6Config, Scenario};

/// Cluster shape shared by every cell: the Fig. 6 query's 31 tasks on 12
/// workers, with 12 standby nodes for checkpoints and replicas.
const N_WORKERS: usize = 12;
const N_STANDBY: usize = 12;

/// Rack sizes (the burst unit) of the sweep. Racks are consecutive node
/// ranges over workers *and* standbys, so cascades can take replicas down
/// with their primaries — unless the placement separated them.
fn burst_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![4]
    } else {
        vec![2, 4, 8]
    }
}

/// Cascade spread probabilities (the correlation strength) of the sweep.
fn spreads(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.9]
    } else {
        vec![0.0, 0.5, 0.9]
    }
}

/// The placement roster; [`build_placement`] maps a label to the strategy.
fn roster() -> Vec<&'static str> {
    vec!["RoundRobin", "Packed", "DomainSpread"]
}

fn build_placement(name: &str) -> Box<dyn PlacementStrategy> {
    match name {
        "RoundRobin" => Box::new(RoundRobin),
        "Packed" => Box::new(Packed),
        "DomainSpread" => Box::new(DomainSpread::racks()),
        other => unreachable!("unknown placement strategy {other}"),
    }
}

/// The generated trace of one `(burst, corr)` cell, drawn from the cell's
/// cluster tree — placement-independent, so every strategy replays the
/// same node deaths.
fn cell_trace(cluster: &Cluster, spread: f64, fail_at: u64, base_seed: u64) -> FailureTrace {
    let tree = cluster.domains.as_ref().expect("racked cluster has a tree");
    let process = CascadeProcess {
        level: 1,
        spread,
        decay: 0.5,
        hop_delay: SimDuration::from_secs(2),
        fraction: 1.0,
        // Pin the origin to the first rack — always worker infrastructure,
        // under every burst size — so cells compare placements against a
        // strike on comparable hardware instead of a randomly chosen (and
        // possibly consequence-free, all-standby) rack.
        origin: Some(0),
    };
    let seed = base_seed ^ 0x9e37 ^ (((spread * 100.0) as u64) << 20);
    process.generate_seeded(
        tree,
        SimTime::from_secs(fail_at),
        SimDuration::from_secs(60),
        seed,
    )
}

/// Fraction of the graph's MC-trees that remain fully serviceable after
/// the trace's kill set: every task of the tree either kept its primary
/// node or is in the plan with a surviving standby (replica takeover).
/// The structural quantity DomainSpread optimizes, reported next to the
/// measured fidelity it is supposed to explain.
fn surviving_tree_fraction(
    placement: &Placement,
    plan: &TaskSet,
    graph: &ppa_core::model::TaskGraph,
    killed: &[usize],
) -> f64 {
    let trees = enumerate_mc_trees(graph, McTreeLimits::default()).expect("fig6 enumerates");
    let dead = |node: usize| killed.binary_search(&node).is_ok();
    let alive = trees
        .iter()
        .filter(|tree| {
            tree.iter().all(|t| {
                !dead(placement.primary[t.0]) || (plan.contains(t) && !dead(placement.standby[t.0]))
            })
        })
        .count();
    alive as f64 / trees.len().max(1) as f64
}

/// One cell × strategy outcome.
struct Outcome {
    fidelity: f64,
    surviving: f64,
    killed: usize,
}

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;
    let (fail_at, duration) = schedule(quick);
    let fidelity_window = 60u64;
    let cfg = Fig6Config {
        rate: if quick { 300 } else { 1000 },
        window: SimDuration::from_secs(if quick { 10 } else { 30 }),
        ..Fig6Config::default()
    };
    let bursts = burst_sizes(quick);
    let spreads = spreads(quick);
    let roster = roster();

    // One leaf job per (burst, spread, placement strategy) cell.
    let mut jobs: Vec<(usize, f64, &'static str)> = Vec::new();
    for &b in &bursts {
        for &p in &spreads {
            for &s in &roster {
                jobs.push((b, p, s));
            }
        }
    }
    let outcomes: Vec<Outcome> = ctx.map(jobs, |(rack_size, spread, name)| {
        let cluster = Cluster::racked(N_WORKERS, N_STANDBY, rack_size).expect("positive rack size");
        let trace = cell_trace(&cluster, spread, fail_at, cfg.seed);
        let placement = build_placement(name);
        let scenario: Scenario = ppa_workloads::fig6_scenario(&cfg)
            .placed_with(placement.as_ref(), &cluster)
            .expect("fig6 fits the sweep cluster");
        let n = scenario.graph().n_tasks();
        // Plan against this placement's own node → fault-domain mapping:
        // the planner hedges exactly the rack failures this placement can
        // actually suffer.
        let cx = scenario
            .placement
            .plan_context(scenario.query.topology())
            .expect("fig6 plans against its racked cluster");
        let plan: TaskSet = StructureAwarePlanner::default()
            .plan(&cx, n / 2)
            .expect("SA plan")
            .tasks;
        let strategy = Strategy::Ppa {
            plan: plan.clone(),
            interval_secs: 5,
        };

        // Steady-state tentative sampling (README.md §Design notes 5):
        // replicas take over, everything else stays down for the window.
        let mut config = strategy.config(n, cfg.window, cfg.seed);
        config.passive_recovery = false;

        // Golden run: same placement, no failures — the fidelity baseline
        // (placement-induced CPU contention cancels out).
        let golden = Simulation::run_trace(
            &scenario.query,
            scenario.placement.clone(),
            config.clone(),
            &FailureTrace::new(),
            SimDuration::from_secs(duration),
        );
        let report = run_scenario_config(
            ctx,
            &format!("burst:{rack_size} corr:{spread} place:{name}"),
            &scenario,
            &strategy,
            config,
            &trace,
            duration,
        );
        Outcome {
            fidelity: batch_fidelity(
                &golden,
                &report,
                fail_at,
                fail_at + fidelity_window,
                // One heartbeat of slack: the shared detection gap is
                // forgiven, recovery replay arriving later is not.
                SimDuration::from_secs(5),
            ),
            surviving: surviving_tree_fraction(
                &scenario.placement,
                &plan,
                &scenario.graph(),
                &trace.killed_nodes(),
            ),
            killed: trace.killed_nodes().len(),
        }
    });

    let cell_label = |b: usize, p: f64| format!("burst:{b} corr:{p}");
    let idx = |bi: usize, pi: usize, si: usize| (bi * spreads.len() + pi) * roster.len() + si;

    let mut fidelity = Figure::new(
        "placement_sweep",
        "Post-burst output fidelity per placement strategy",
        "burst size × correlation",
        "output fidelity vs golden run",
    );
    let mut surviving = Figure::new(
        "placement_sweep_trees",
        "Serviceable MC-trees after the burst per placement strategy",
        "burst size × correlation",
        "fraction of MC-trees serviceable",
    );
    for (si, name) in roster.iter().enumerate() {
        let mut f_series = Series::new(*name);
        let mut s_series = Series::new(*name);
        for (bi, &b) in bursts.iter().enumerate() {
            for (pi, &p) in spreads.iter().enumerate() {
                let o = &outcomes[idx(bi, pi, si)];
                f_series.push(cell_label(b, p), o.fidelity);
                s_series.push(cell_label(b, p), o.surviving);
            }
        }
        fidelity.series.push(f_series);
        surviving.series.push(s_series);
    }
    fidelity.note(
        "Fidelity = on-time per-batch sink volume over the 60 s after the burst, \
         relative to a failure-free run of the same placement (1.0 = nothing lost; \
         5 s lateness budget). Every cell replays one seeded cascade trace under all \
         three placements with passive recovery held down, so the number is the \
         steady-state tentative quality of the placement + its PPA-n/2 plan (planned \
         against the placement's actual node-to-rack mapping via Placement::plan_context). \
         DomainSpread's anti-affinity keeps tentative output flowing where Packed \
         loses whole operator layers.",
    );
    surviving.note(
        "Structural view of the same cells: an MC-tree is serviceable when each of \
         its tasks kept its primary node or has a planned replica on a surviving \
         standby. Racks span the worker/standby boundary, so packed placements can \
         lose a primary together with its replica.",
    );

    let mut scale = Figure::new(
        "placement_sweep_scale",
        "Blast radius of the placement-sweep scenarios",
        "burst size × correlation",
        format!("nodes killed (of {})", N_WORKERS + N_STANDBY),
    );
    let mut killed = Series::new("nodes killed");
    for (bi, &b) in bursts.iter().enumerate() {
        for (pi, &p) in spreads.iter().enumerate() {
            killed.push(cell_label(b, p), outcomes[idx(bi, pi, 0)].killed as f64);
        }
    }
    scale.series.push(killed);
    scale.note("The kill set is identical for every placement strategy in a cell.");

    vec![fidelity, surviving, scale]
}
