//! Fig. 14: SA vs Greedy over corpora of random topologies, sweeping the
//! replication ratio, across four specification knobs:
//! (a) task-workload skew, (b) parallelism range, (c) structured vs full
//! partitioning, (d) join-operator fraction.
//!
//! 100 topologies per specification (12 in quick mode); the DP is omitted —
//! as in the paper — because MC-tree enumeration explodes on these.

use crate::runner::RunCtx;
use crate::{Figure, Series};
use ppa_core::{
    GreedyPlanner, PlanContext, Planner, RandomTopologySpec, Skew, StructureAwarePlanner,
    TopologyStyle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ratios(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.1, 0.3, 0.6]
    } else {
        vec![0.05, 0.1, 0.2, 0.4, 0.6, 0.8]
    }
}

/// Mean OF of SA and Greedy plans over `n` random topologies for each
/// ratio. Returns (sa_means, greedy_means); each topology is one leaf job
/// on the shared pool.
fn corpus_means(
    ctx: &RunCtx,
    spec: &RandomTopologySpec,
    n: usize,
    seed: u64,
    ratios: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let per_topo: Vec<(Vec<f64>, Vec<f64>)> = ctx.map((0..n).collect(), |i| {
        // One RNG per topology keeps results independent of scheduling.
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37));
        let topo = spec.generate(&mut rng);
        let cx = PlanContext::new(&topo).expect("random topology is valid");
        let n_tasks = cx.n_tasks();
        let mut sa_vals = Vec::with_capacity(ratios.len());
        let mut gr_vals = Vec::with_capacity(ratios.len());
        for &r in ratios {
            let budget = ((n_tasks as f64) * r).round() as usize;
            let sa = StructureAwarePlanner::default()
                .plan(&cx, budget)
                .expect("SA never errors");
            let gr = GreedyPlanner
                .plan(&cx, budget)
                .expect("greedy never errors");
            sa_vals.push(cx.of_plan(&sa.tasks));
            gr_vals.push(cx.of_plan(&gr.tasks));
        }
        (sa_vals, gr_vals)
    });

    let n = per_topo.len().max(1);
    let mut sa_means = vec![0.0; ratios.len()];
    let mut gr_means = vec![0.0; ratios.len()];
    for (s, g) in &per_topo {
        for k in 0..ratios.len() {
            sa_means[k] += s[k];
            gr_means[k] += g[k];
        }
    }
    for k in 0..ratios.len() {
        sa_means[k] /= n as f64;
        gr_means[k] /= n as f64;
    }
    (sa_means, gr_means)
}

fn base_spec() -> RandomTopologySpec {
    RandomTopologySpec {
        n_operators: (5, 10),
        parallelism: (1, 10),
        join_fraction: 0.0,
        skew: Skew::Uniform,
        style: TopologyStyle::Structured,
        ..RandomTopologySpec::default()
    }
}

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;
    let n = if quick { 12 } else { 100 };
    let ratios = ratios(quick);
    let xs: Vec<String> = ratios.iter().map(|r| format!("{r:.2}")).collect();

    let panel = |id: &str,
                 title: &str,
                 variants: Vec<(&str, RandomTopologySpec)>,
                 note: &str,
                 seed: u64|
     -> Figure {
        let mut fig = Figure::new(id, title, "replication ratio", "output fidelity");
        for (label, spec) in variants {
            let (sa, gr) = corpus_means(ctx, &spec, n, seed, &ratios);
            let mut s_sa = Series::new(format!("SA-{label}"));
            let mut s_gr = Series::new(format!("Greedy-{label}"));
            for (k, x) in xs.iter().enumerate() {
                s_sa.push(x.clone(), sa[k]);
                s_gr.push(x.clone(), gr[k]);
            }
            fig.series.push(s_sa);
            fig.series.push(s_gr);
        }
        fig.note(note);
        fig
    };

    vec![
        panel(
            "fig14a",
            "Random topologies — workload skewness",
            vec![
                (
                    "zipf",
                    RandomTopologySpec {
                        skew: Skew::Zipf { s: 0.1 },
                        ..base_spec()
                    },
                ),
                ("uniform", base_spec()),
            ],
            "Expected shape (paper): SA > Greedy everywhere; skewed workloads widen \
             SA's lead because heavy MC-trees dominate OF.",
            1,
        ),
        panel(
            "fig14b",
            "Random topologies — degree of parallelization",
            vec![
                (
                    "para:10~20",
                    RandomTopologySpec {
                        parallelism: (10, 20),
                        ..base_spec()
                    },
                ),
                ("para:1~10", base_spec()),
            ],
            "Expected shape (paper): SA > Greedy for both ranges.",
            2,
        ),
        panel(
            "fig14c",
            "Random topologies — structured vs full partitioning",
            vec![
                ("Structure", base_spec()),
                (
                    "Full",
                    RandomTopologySpec {
                        style: TopologyStyle::Full,
                        ..base_spec()
                    },
                ),
            ],
            "Expected shape (paper): structured topologies reach higher OF than full \
             ones (a full-partitioned failure degrades every downstream task); on \
             full topologies SA and Greedy converge.",
            3,
        ),
        panel(
            "fig14d",
            "Random topologies — fraction of join operators",
            vec![
                ("NoJoin", base_spec()),
                (
                    "Join-50%",
                    RandomTopologySpec {
                        join_fraction: 0.5,
                        ..base_spec()
                    },
                ),
            ],
            "Expected shape (paper): joins lower OF at equal budget — losing one \
             input stream of a join wastes the surviving correlated stream.",
            4,
        ),
    ]
}
