//! `corr_sweep`: beyond the paper's fixed §VI-A kill set — a systematic
//! sweep over a *generated* correlated-failure scenario space on the
//! Fig. 6 topology.
//!
//! The sweep has three axes:
//!
//! * **burst size** — the 15 worker nodes are grouped into racks of `b`
//!   consecutive nodes; the origin rack dies as one unit;
//! * **correlation strength** — the burst cascades to sibling racks with
//!   probability `p` (decaying by 0.5 per ring, 2 s per hop), so `p = 0`
//!   is an isolated rack failure and large `p` approaches the paper's
//!   everything-dies-at-once scenario;
//! * **strategy** — checkpoint-only, fully active, and a PPA plan whose
//!   budget is spent against the *rack* failure model: the planner's
//!   correlated-failure sets are derived from the same fault-domain
//!   hierarchy the generator bursts (`PlanContext::with_fault_domains`),
//!   not from an ad-hoc kill list. The derived sets are the *single-rack*
//!   bursts; cells with `p > 0` replay multi-rack cascades, deliberately
//!   stressing the plan beyond the failure space it hedged against.
//!
//! Every `(b, p)` cell generates one trace (seeded; identical across
//! worker counts) and replays it under each strategy, so strategies are
//! compared on identical failures. Reported latency: detection → last
//! failed task restored (the Fig. 8 completion metric).

use super::{completion_latency, run_scenario, schedule, Strategy};
use crate::runner::RunCtx;
use crate::{Figure, Series};
use ppa_core::{PlanContext, Planner, StructureAwarePlanner, TaskSet};
use ppa_engine::FailureTrace;
use ppa_faults::{CascadeProcess, FailureProcess};
use ppa_sim::{SimDuration, SimTime};
use ppa_workloads::{Fig6Config, Scenario};

/// Rack sizes (the burst unit) of the sweep.
fn burst_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 5]
    } else {
        vec![1, 5, 15]
    }
}

/// Cascade spread probabilities (the correlation strength) of the sweep.
fn spreads(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.9]
    } else {
        vec![0.0, 0.5, 0.9]
    }
}

/// The sweep's strategy roster as series labels; [`build_strategy`] turns
/// a label into the cell's concrete [`Strategy`] (the PPA plan depends on
/// the cell's rack size, so strategies are built per cell, and every
/// label listed here must have a `build_strategy` arm).
fn roster(quick: bool) -> Vec<&'static str> {
    if quick {
        vec!["Checkpoint-5s", "PPA-half-5s", "Active-5s"]
    } else {
        vec!["Checkpoint-5s", "PPA-half-5s", "Active-5s", "Storm"]
    }
}

fn build_strategy(name: &str, scenario: &Scenario, rack_size: usize) -> Strategy {
    match name {
        "Checkpoint-5s" => Strategy::Checkpoint { interval_secs: 5 },
        "Active-5s" => Strategy::Active { sync_secs: 5 },
        "Storm" => Strategy::Storm,
        "PPA-half-5s" => {
            // Plan against the cell's own rack failure model: the planner
            // hedges against any single rack of this burst size failing.
            // Cascades (p > 0) kill several racks, so high-correlation
            // cells test the plan outside its planned-for failure space.
            let n = scenario.graph().n_tasks();
            let tree = scenario.worker_fault_domains(rack_size);
            let cx = PlanContext::with_fault_domains(
                scenario.query.topology(),
                &tree,
                &scenario.placement.primary,
            )
            .expect("fig6 plans");
            let plan: TaskSet = StructureAwarePlanner::default()
                .plan(&cx, n / 2)
                .expect("SA plan")
                .tasks;
            Strategy::Ppa {
                plan,
                interval_secs: 5,
            }
        }
        other => unreachable!("unknown sweep strategy {other}"),
    }
}

/// The generated trace of one `(burst size, spread)` cell. Seeded purely
/// from the cell coordinates, so every strategy replays the same failures
/// and any `--jobs` count produces the same sweep.
fn cell_trace(
    scenario: &Scenario,
    rack_size: usize,
    spread: f64,
    fail_at: u64,
    base_seed: u64,
) -> FailureTrace {
    let tree = scenario.worker_fault_domains(rack_size);
    let process = CascadeProcess {
        level: 1,
        spread,
        decay: 0.5,
        hop_delay: SimDuration::from_secs(2),
        fraction: 1.0,
        origin: None,
    };
    let seed = base_seed ^ ((rack_size as u64) << 8) ^ (((spread * 100.0) as u64) << 20);
    process.generate_seeded(
        &tree,
        SimTime::from_secs(fail_at),
        SimDuration::from_secs(60),
        seed,
    )
}

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;
    let (fail_at, duration) = schedule(quick);
    let cfg = Fig6Config {
        rate: if quick { 300 } else { 1000 },
        window: SimDuration::from_secs(if quick { 10 } else { 30 }),
        ..Fig6Config::default()
    };
    let bursts = burst_sizes(quick);
    let spreads = spreads(quick);
    let roster = roster(quick);

    // One leaf job per (burst, spread, strategy) cell.
    let mut jobs: Vec<(usize, f64, &'static str)> = Vec::new();
    for &b in &bursts {
        for &p in &spreads {
            for &s in &roster {
                jobs.push((b, p, s));
            }
        }
    }
    // Each job yields (completion latency, nodes the trace killed).
    let outcomes: Vec<(f64, usize)> = ctx.map(jobs, |(rack_size, spread, name)| {
        let scenario = ppa_workloads::fig6_scenario(&cfg);
        let trace = cell_trace(&scenario, rack_size, spread, fail_at, cfg.seed);
        let strategy = build_strategy(name, &scenario, rack_size);
        let report = run_scenario(
            ctx,
            &format!("burst:{rack_size} corr:{spread}"),
            &scenario,
            &strategy,
            cfg.window,
            &trace,
            duration,
            cfg.seed,
        );
        let graph = scenario.graph();
        let latency = completion_latency(&report, |t| !graph.is_source_task(t));
        (latency, trace.killed_nodes().len())
    });

    let cell_label = |b: usize, p: f64| format!("burst:{b} corr:{p}");

    let mut fig = Figure::new(
        "corr_sweep",
        "Recovery completion across generated correlated-failure scenarios",
        "burst size × correlation",
        "recovery latency (s)",
    );
    for (si, name) in roster.iter().enumerate() {
        let mut series = Series::new(*name);
        for (bi, &b) in bursts.iter().enumerate() {
            for (pi, &p) in spreads.iter().enumerate() {
                let idx = (bi * spreads.len() + pi) * roster.len() + si;
                series.push(cell_label(b, p), outcomes[idx].0);
            }
        }
        fig.series.push(series);
    }
    fig.note(
        "Beyond the paper: scenarios generated by the ppa-faults cascade process \
         (racks of `burst` nodes; spread probability `corr`, decay 0.5/ring, 2s/hop) \
         instead of a hand-picked kill set. Every cell replays one seeded trace under \
         each strategy; PPA-half plans against the cell's fault-domain hierarchy.",
    );

    let mut scale = Figure::new(
        "corr_sweep_scale",
        "Blast radius of the generated scenarios",
        "burst size × correlation",
        "worker nodes killed (of 15)",
    );
    let mut killed = Series::new("nodes killed");
    for (bi, &b) in bursts.iter().enumerate() {
        for (pi, &p) in spreads.iter().enumerate() {
            let idx = (bi * spreads.len() + pi) * roster.len();
            killed.push(cell_label(b, p), outcomes[idx].1 as f64);
        }
    }
    scale.series.push(killed);
    scale.note(
        "The kill set is identical for every strategy in a cell; correlation strength \
         multiplies the blast radius of a fixed-size burst.",
    );

    vec![fig, scale]
}
