//! Fig. 12: does the OF metric predict the *actual* accuracy of tentative
//! outputs, and does the IC baseline mispredict it for queries with joins?
//!
//! For each replication budget, a plan is optimized for OF and another for
//! IC (both with the structure-aware planner). Each plan's metric value is
//! reported next to the *measured* accuracy of the tentative output when
//! every primary node dies (the worst-case correlated failure): the plan's
//! run is compared against a golden no-failure run over the batches between
//! failure detection and the end of the measurement window.

use super::{run_scenario, Strategy};
use crate::runner::RunCtx;
use crate::{Figure, Series};
use ppa_core::planner::Objective;
use ppa_core::{PlanContext, Planner, StructureAwarePlanner, TaskSet};
use ppa_engine::RunReport;
use ppa_sim::SimDuration;
use ppa_workloads::{
    incident_accuracy, q1_scenario, q2_scenario, topk_accuracy, NavigationConfig, Q1Config,
    Scenario,
};

/// Which evaluation query an accuracy harness drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    Q1,
    Q2,
}

/// Shared harness for the Fig. 12/13 accuracy experiments.
pub struct AccuracyHarness {
    pub kind: QueryKind,
    pub scenario: Scenario,
    golden: RunReport,
    fail_at: u64,
    duration: u64,
    from_batch: u64,
    to_batch: u64,
    seed: u64,
}

impl AccuracyHarness {
    /// Builds the harness, including its golden (no-failure) run. Heavy —
    /// submit as a leaf job.
    pub fn new(ctx: &RunCtx, kind: QueryKind, quick: bool) -> Self {
        let scenario = match (kind, quick) {
            (QueryKind::Q1, false) => q1_scenario(&Q1Config::default()),
            (QueryKind::Q1, true) => q1_scenario(&Q1Config {
                src_tasks: 8,
                o1_tasks: 4,
                o2_tasks: 2,
                rate: 150,
                n_objects: 150,
                k: 50,
                window_batches: 10,
                ..Q1Config::default()
            }),
            (QueryKind::Q2, false) => q2_scenario(&NavigationConfig::default()),
            (QueryKind::Q2, true) => q2_scenario(&NavigationConfig {
                loc_src_tasks: 4,
                o1_tasks: 2,
                o3_tasks: 2,
                location_rate: 1_000,
                n_segments: 200,
                ..NavigationConfig::default()
            }),
        };
        let (fail_at, settle) = match (kind, quick) {
            // Settle time: detection (≤5s) plus the query's state window, so
            // windowed aggregates fully turn over into degraded state before
            // accuracy is sampled.
            (QueryKind::Q1, false) => (45, 7 + 20),
            (QueryKind::Q1, true) => (30, 7 + 10),
            (QueryKind::Q2, _) => (if quick { 30 } else { 45 }, 7 + 6),
        };
        let from_batch = fail_at + settle;
        let to_batch = from_batch + if quick { 12 } else { 20 };
        let duration = to_batch + 5;
        let seed = 42;
        let golden = run_scenario(
            ctx,
            &format!("{kind:?}-golden"),
            &scenario,
            // A golden run has no failures; FtMode::None via an empty plan
            // would still checkpoint, so use a plain no-failure run.
            &Strategy::Checkpoint {
                interval_secs: 10_000,
            },
            SimDuration::from_secs(30),
            &ppa_engine::FailureTrace::new(),
            duration,
            seed,
        );
        AccuracyHarness {
            kind,
            scenario,
            golden,
            fail_at,
            duration,
            from_batch,
            to_batch,
            seed,
        }
    }

    /// Planning context over the harness's topology.
    pub fn context(&self, objective: Objective) -> PlanContext {
        PlanContext::new(self.scenario.query.topology())
            .expect("scenario topology is valid")
            .with_objective(objective)
    }

    /// Budget for a resource-consumption ratio.
    pub fn budget(&self, ratio: f64) -> usize {
        ((self.scenario.graph().n_tasks() as f64) * ratio).round() as usize
    }

    /// Measured tentative-output accuracy of `plan` under the worst-case
    /// correlated failure (every primary node dies).
    ///
    /// Passive recovery is held back for the measurement so the window
    /// samples the plan's *steady-state* tentative quality — exactly the
    /// quantity Definition 2's OF models. (In the paper the same steadiness
    /// comes for free: EC2-scale recoveries lasted tens of seconds, longer
    /// than any query window. See README.md §Design notes.)
    pub fn measure(&self, plan: &TaskSet) -> f64 {
        use ppa_engine::{EngineConfig, FailureSpec, FtMode, Simulation};
        use ppa_sim::SimTime;

        let config = EngineConfig {
            mode: FtMode::ppa(plan.clone(), SimDuration::from_secs(10)),
            seed: self.seed,
            passive_recovery: false,
            ..EngineConfig::default()
        };
        let report = Simulation::run(
            &self.scenario.query,
            self.scenario.placement.clone(),
            config,
            vec![FailureSpec {
                at: SimTime::from_secs(self.fail_at),
                nodes: self.scenario.placement.all_primary_nodes(),
            }],
            SimDuration::from_secs(self.duration),
        );
        match self.kind {
            QueryKind::Q1 => topk_accuracy(&self.golden, &report, self.from_batch, self.to_batch),
            QueryKind::Q2 => {
                incident_accuracy(&self.golden, &report, self.from_batch, self.to_batch)
            }
        }
    }
}

/// Resource-consumption ratios of the paper's x-axis.
pub fn ratios(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.3, 0.6]
    } else {
        vec![0.2, 0.4, 0.6, 0.8]
    }
}

const KINDS: [(QueryKind, &str); 2] =
    [(QueryKind::Q1, "Q1 top-k"), (QueryKind::Q2, "Q2 incidents")];

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;

    // Leaf phase 1 — harnesses (each includes a golden run).
    let harnesses: Vec<AccuracyHarness> = ctx.map(KINDS.to_vec(), |(kind, _)| {
        AccuracyHarness::new(ctx, kind, quick)
    });

    // Leaf phase 2 — one job per (query, ratio, objective): plan, metric
    // value, and the measured accuracy under the worst-case failure.
    let objectives = [Objective::OutputFidelity, Objective::InternalCompleteness];
    let rs = ratios(quick);
    let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
    for ki in 0..KINDS.len() {
        for oi in 0..objectives.len() {
            for ri in 0..rs.len() {
                jobs.push((ki, oi, ri));
            }
        }
    }
    let outcomes: Vec<(f64, f64)> = ctx.map(jobs, |(ki, oi, ri)| {
        let harness = &harnesses[ki];
        let cx = harness.context(objectives[oi]);
        let budget = harness.budget(rs[ri]);
        let plan = StructureAwarePlanner::default()
            .plan(&cx, budget)
            .expect("SA plan")
            .tasks;
        let metric = match objectives[oi] {
            Objective::OutputFidelity => cx.of_plan(&plan),
            Objective::InternalCompleteness => cx.ic_plan(&plan),
        };
        (metric, harness.measure(&plan))
    });

    let mut figures = Vec::new();
    for (ki, (kind, name)) in KINDS.iter().enumerate() {
        let mut s_of = Series::new("OF");
        let mut s_of_acc = Series::new("OF-SA-Accuracy");
        let mut s_ic = Series::new("IC");
        let mut s_ic_acc = Series::new("IC-SA-Accuracy");
        for (ri, ratio) in rs.iter().enumerate() {
            let x = format!("{ratio:.1}");
            let (of, of_acc) = outcomes[(ki * objectives.len()) * rs.len() + ri];
            let (ic, ic_acc) = outcomes[(ki * objectives.len() + 1) * rs.len() + ri];
            s_of.push(x.clone(), of);
            s_of_acc.push(x.clone(), of_acc);
            s_ic.push(x.clone(), ic);
            s_ic_acc.push(x, ic_acc);
        }

        let mut fig = Figure::new(
            "fig12",
            format!("Metric validation — {name}"),
            "resource consumption",
            "OF / IC / measured accuracy",
        );
        fig.series = vec![s_of, s_of_acc, s_ic, s_ic_acc];
        fig.note(match kind {
            QueryKind::Q1 => {
                "Expected shape (paper): Q1 is join-free, so OF and IC both track the \
                 measured top-k accuracy well."
            }
            QueryKind::Q2 => {
                "Expected shape (paper): Q2 joins two streams; IC keeps rising with \
                 resources while the accuracy of IC-optimized plans lags — IC ignores \
                 input-stream correlation. OF tracks accuracy."
            }
        });
        figures.push(fig);
    }
    figures
}
