//! `approx_sweep`: what does divergence-bounded *approximate* fault
//! tolerance buy over exact checkpointing? The third recovery family
//! (`FtMode::Approximate`) ships a state backup only when a task's
//! accumulated divergence exceeds its error bound, and on failure
//! restores from the last shipped snapshot *without* replaying the
//! forfeited batches — recovery latency drops to restore cost alone,
//! paid for in output fidelity the engine itself quantifies as a
//! per-outage `fidelity_floor`.
//!
//! Every cell builds the `adaptive_sweep` cluster (12 workers + 12
//! standbys, racks of 4), places the Fig. 6 query round-robin, and
//! replays one seeded cascade pinned to the first worker rack. Cells
//! sweep the cascade's correlation (spread) and burst size (fraction of
//! the origin rack killed); the strategy roster sweeps the error bound —
//! exact `Checkpoint-5s` against `Approx-5s-e{bound}` for each bound —
//! over identical node deaths. Per cell and strategy: recovery
//! completion latency, output fidelity inside the outage window against
//! that strategy's own failure-free golden run, the engine-recorded
//! fidelity floor, and the approximate backup cadence (shipped vs
//! skipped), showing the divergence-driven backup rate the planner cost
//! model (`ppa_core::BackupCadence`) prices.

use super::{completion_latency, drive_scenario_config, schedule, Strategy};
use crate::runner::RunCtx;
use crate::{Figure, Series};
use ppa_engine::{Cluster, FailureTrace, RoundRobin, Simulation};
use ppa_faults::{CascadeProcess, FailureProcess};
use ppa_sim::{SimDuration, SimTime};
use ppa_workloads::{floored_outage_windows, outage_fidelity, Fig6Config, Scenario};

/// Cluster shape shared by every cell (the `adaptive_sweep` cluster).
const N_WORKERS: usize = 12;
const N_STANDBY: usize = 12;
const RACK_SIZE: usize = 4;
/// Fidelity is attributed to this window after the failure onset — long
/// enough to contain detection, recovery and the catch-up tail of every
/// strategy in the roster.
const OUTAGE_WINDOW_SECS: u64 = 45;

/// One cell: (cascade spread, burst fraction of the origin rack).
fn cells(quick: bool) -> Vec<(f64, f64)> {
    if quick {
        vec![(0.0, 1.0), (0.9, 1.0)]
    } else {
        let mut out = Vec::new();
        for corr in [0.0, 0.5, 0.9] {
            for burst in [0.5, 1.0] {
                out.push((corr, burst));
            }
        }
        out
    }
}

/// The strategy roster: exact checkpointing against the approximate
/// family across error bounds. All share the 5 s interval, so the only
/// degree of freedom is how much divergence a task may accumulate before
/// its next backup ships.
fn roster(quick: bool) -> Vec<Strategy> {
    let bounds: &[u64] = if quick {
        &[2_000, 8_000]
    } else {
        &[1_000, 4_000, 16_000]
    };
    let mut out = vec![Strategy::Checkpoint { interval_secs: 5 }];
    out.extend(bounds.iter().map(|&error_bound| Strategy::Approximate {
        interval_secs: 5,
        error_bound,
    }));
    out
}

/// The cascade of a cell: one seeded wave pinned to the first worker
/// rack. Strategy-independent, so every roster entry replays identical
/// node deaths.
fn cascade_trace(
    cluster: &Cluster,
    corr: f64,
    burst: f64,
    fail_at: u64,
    base_seed: u64,
) -> FailureTrace {
    let tree = cluster.domains.as_ref().expect("racked cluster has a tree");
    let process = CascadeProcess {
        level: 1,
        spread: corr,
        decay: 0.5,
        hop_delay: SimDuration::from_secs(2),
        fraction: burst,
        origin: Some(0),
    };
    let seed =
        base_seed ^ 0xa99c ^ (((corr * 100.0) as u64) << 20) ^ (((burst * 100.0) as u64) << 8);
    process.generate_seeded(
        tree,
        SimTime::from_secs(fail_at),
        SimDuration::from_secs(20),
        seed,
    )
}

/// One strategy's outcome within a cell.
struct StrategyOutcome {
    /// Recovery completion latency over the non-source tasks (seconds).
    latency: f64,
    /// Fidelity inside the outage window vs this strategy's own golden run.
    fidelity: f64,
    /// Worst engine-recorded fidelity floor across the run's outage
    /// windows (`None` when no lossy recovery happened — exact modes, or
    /// an approximate recovery that forfeited nothing).
    floor: Option<u16>,
    /// Approximate backups shipped / suppressed by the divergence model.
    shipped: u64,
    skipped: u64,
}

/// One cell's outcome: every roster entry over the identical kill set.
struct Outcome {
    by_strategy: Vec<StrategyOutcome>,
    killed: usize,
}

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;
    let (fail_at, duration) = schedule(quick);
    let cfg = Fig6Config {
        rate: if quick { 300 } else { 1000 },
        window: SimDuration::from_secs(if quick { 10 } else { 30 }),
        ..Fig6Config::default()
    };
    let cells = cells(quick);
    let roster = roster(quick);

    // One leaf job per cell: the whole roster shares the cluster, trace
    // and scenario, and each strategy is scored against its own golden
    // run (backup cadence charges CPU, so sink timing is per-strategy).
    let outcomes: Vec<Outcome> = ctx.map(cells.clone(), |(corr, burst)| {
        let cluster = Cluster::racked(N_WORKERS, N_STANDBY, RACK_SIZE).expect("positive rack size");
        let trace = cascade_trace(&cluster, corr, burst, fail_at, cfg.seed);
        let scenario: Scenario = ppa_workloads::fig6_scenario(&cfg)
            .placed_with(&RoundRobin, &cluster)
            .expect("fig6 fits the sweep cluster");
        let graph = scenario.graph();
        let n = graph.n_tasks();
        let by_strategy = roster
            .iter()
            .map(|strategy| {
                let config = strategy.config(n, cfg.window, cfg.seed);
                let batch = config.batch_interval;
                let golden = Simulation::run_trace(
                    &scenario.query,
                    scenario.placement.clone(),
                    strategy.config(n, cfg.window, cfg.seed),
                    &FailureTrace::new(),
                    SimDuration::from_secs(duration),
                );
                let driven = drive_scenario_config(
                    ctx,
                    &format!("corr:{corr} burst:{burst}"),
                    &scenario,
                    strategy,
                    config,
                    &trace,
                    duration,
                );
                let fidelity = outage_fidelity(
                    &golden,
                    &driven.report,
                    &[(fail_at, fail_at + OUTAGE_WINDOW_SECS)],
                    SimDuration::from_secs(5), // one heartbeat of slack
                )[0];
                StrategyOutcome {
                    latency: completion_latency(&driven.report, |t| !graph.is_source_task(t)),
                    fidelity,
                    floor: floored_outage_windows(&driven.report, batch, duration)
                        .iter()
                        .filter_map(|w| w.fidelity_floor)
                        .min(),
                    shipped: driven.metrics.counter("engine.approx.backups_shipped"),
                    skipped: driven.metrics.counter("engine.approx.backups_skipped"),
                }
            })
            .collect();
        Outcome {
            by_strategy,
            killed: trace.killed_nodes().len(),
        }
    });

    let cell_label = |&(corr, burst): &(f64, f64)| format!("corr:{corr} burst:{burst}");

    let mut latency = Figure::new(
        "approx_sweep",
        "Recovery completion latency: divergence-bounded approximate vs exact checkpointing",
        "cascade spread x burst fraction",
        "completion latency (s)",
    );
    for (si, strategy) in roster.iter().enumerate() {
        let mut series = Series::new(strategy.label());
        for (ci, cell) in cells.iter().enumerate() {
            series.push(cell_label(cell), outcomes[ci].by_strategy[si].latency);
        }
        latency.series.push(series);
    }
    let mut killed = Series::new("nodes killed");
    for (ci, cell) in cells.iter().enumerate() {
        killed.push(cell_label(cell), outcomes[ci].killed as f64);
    }
    latency.series.push(killed);
    latency.note(
        "One seeded cascade per cell, pinned to the first worker rack; every \
         strategy replays identical node deaths. Completion latency is detection \
         to the LAST non-source task restoring its pre-failure progress. Exact \
         checkpointing must replay every batch since its last snapshot before a \
         task counts as recovered; the approximate family restores the last \
         shipped snapshot and jumps to the failure-time frontier without replay, \
         so its completion latency collapses to restore cost — the forfeited \
         batches are charged to fidelity instead (see approx_sweep_fidelity).",
    );

    let mut fidelity = Figure::new(
        "approx_sweep_fidelity",
        "Fidelity cost of lossy recovery (measured, and the engine's recorded floor)",
        "cascade spread x burst fraction",
        "output fidelity vs golden run",
    );
    for (si, strategy) in roster.iter().enumerate() {
        let mut series = Series::new(strategy.label());
        for (ci, cell) in cells.iter().enumerate() {
            series.push(cell_label(cell), outcomes[ci].by_strategy[si].fidelity);
        }
        fidelity.series.push(series);
    }
    for (si, strategy) in roster.iter().enumerate() {
        if !matches!(strategy, Strategy::Approximate { .. }) {
            continue;
        }
        let mut series = Series::new(format!("floor ({})", strategy.label()));
        for (ci, cell) in cells.iter().enumerate() {
            let floor = outcomes[ci].by_strategy[si]
                .floor
                .map_or(1.0, |f| f64::from(f) / 1000.0);
            series.push(cell_label(cell), floor);
        }
        fidelity.series.push(series);
    }
    fidelity.note(
        "Measured fidelity is on-time per-batch sink volume inside the outage \
         window [fail, fail+45s) against the strategy's own failure-free golden \
         run (5 s lateness budget). The floor series is the engine's own \
         per-outage fidelity_floor — the worst-case share of the outage's \
         batches an approximate recovery retained after forfeiting the \
         divergence-skipped replay (permille, worst outage of the run; 1.0 when \
         nothing was forfeited). Measured fidelity sits at or above the floor: \
         the floor is what recovery gave up, the measurement adds what \
         downstream tentative output preserved anyway.",
    );

    let mut backups = Figure::new(
        "approx_sweep_backups",
        "Divergence-driven backup cadence (the planner's BackupCadence in vivo)",
        "cascade spread x burst fraction",
        "count over the run",
    );
    for (si, strategy) in roster.iter().enumerate() {
        if !matches!(strategy, Strategy::Approximate { .. }) {
            continue;
        }
        let mut shipped = Series::new(format!("shipped ({})", strategy.label()));
        let mut skipped = Series::new(format!("skipped ({})", strategy.label()));
        for (ci, cell) in cells.iter().enumerate() {
            let o = &outcomes[ci].by_strategy[si];
            shipped.push(cell_label(cell), o.shipped as f64);
            skipped.push(cell_label(cell), o.skipped as f64);
        }
        backups.series.push(shipped);
        backups.series.push(skipped);
    }
    backups.note(
        "A backup ships only when a task's accumulated divergence (tuples \
         absorbed since the last ship) exceeds the error bound; in-bound \
         intervals are skipped. Widening the bound trades backups for drift — \
         the rate the planner cost model prices as \
         BackupCadence::Divergence { error_bound, drift_rate } — so larger \
         bounds ship fewer backups and record lower fidelity floors at \
         recovery.",
    );

    vec![latency, fidelity, backups]
}
