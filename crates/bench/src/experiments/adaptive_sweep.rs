//! `adaptive_sweep`: does *reacting* to correlated failures buy output
//! fidelity? The paper plans replication ahead of time (§IV) and sketches
//! §V-C's plan adaptation as future work; this experiment closes the loop
//! through the engine's control plane and measures what the loop is
//! worth.
//!
//! Every cell builds the `placement_sweep` cluster (12 workers + 12
//! standbys, racks of `burst` consecutive nodes spanning the
//! worker/standby boundary), places the Fig. 6 query round-robin (the
//! engine's historical domain-blind default — exactly the layout a
//! control plane has to rescue) with a PPA-`n/2` plan built against the
//! placement's own rack mapping, and replays one seeded failure scenario
//! under two control policies:
//!
//! * **static** — the no-op policy: the run is byte-identical to the
//!   legacy `run_trace` path (the parity suite asserts this), so this
//!   series is the pre-control-plane baseline;
//! * **domain-health** — on every failure hook, evacuate the degraded
//!   rack's neighbours (one ring — cascades spread outward, so the
//!   adjacent racks are the likeliest next victims) and re-plan active
//!   replication via `AdaptivePlanner::step` against the migrated
//!   placement, re-establishing replicas the burst destroyed.
//!
//! Scenario axes: cascade cells sweep burst size × spread probability
//! (the `corr_sweep` grid); a `weibull` cell replaces the burst with the
//! non-memoryless per-node hazard (`WeibullProcess`, infant-mortality
//! shape), where failures drip one by one and the health signal decays
//! between them. As in the other accuracy experiments, passive recovery
//! is held down so each cell samples steady-state tentative quality —
//! any task the control plane does not rescue stays down.
//!
//! Reported: post-burst output fidelity per policy (vs a golden run of
//! the same placement) and the control actions each cell took.

use super::{drive_scenario_config, schedule, Strategy};
use crate::runner::RunCtx;
use crate::{Figure, Series};
use ppa_core::{Planner, StructureAwarePlanner, TaskSet};
use ppa_engine::{Cluster, DomainHealthPolicy, DriveReport, FailureTrace, RoundRobin, Simulation};
use ppa_faults::{CascadeProcess, FailureProcess, WeibullProcess};
use ppa_sim::{SimDuration, SimTime};
use ppa_workloads::{batch_fidelity, Fig6Config, Scenario};

/// Cluster shape shared by every cell (the `placement_sweep` cluster).
const N_WORKERS: usize = 12;
const N_STANDBY: usize = 12;

/// One failure-scenario cell of the sweep.
#[derive(Debug, Clone, Copy)]
enum Cell {
    /// A seeded cascade: racks of `burst` nodes, spread probability
    /// `corr`, origin pinned to the first (always-worker) rack.
    Cascade { burst: usize, corr: f64 },
    /// The non-memoryless per-node hazard: Weibull inter-failure gaps
    /// with the given shape over racks of 4.
    Weibull { shape: f64 },
}

impl Cell {
    fn label(&self) -> String {
        match self {
            Cell::Cascade { burst, corr } => format!("burst:{burst} corr:{corr}"),
            Cell::Weibull { shape } => format!("weibull k:{shape}"),
        }
    }

    fn rack_size(&self) -> usize {
        match self {
            Cell::Cascade { burst, .. } => *burst,
            Cell::Weibull { .. } => 4,
        }
    }

    /// The cell's failure trace, drawn from the cluster's tree — policy-
    /// independent, so both policies replay identical node deaths.
    fn trace(&self, cluster: &Cluster, fail_at: u64, base_seed: u64) -> FailureTrace {
        let tree = cluster.domains.as_ref().expect("racked cluster has a tree");
        let start = SimTime::from_secs(fail_at);
        let horizon = SimDuration::from_secs(60);
        match self {
            Cell::Cascade { corr, .. } => {
                let process = CascadeProcess {
                    level: 1,
                    spread: *corr,
                    decay: 0.5,
                    hop_delay: SimDuration::from_secs(2),
                    fraction: 1.0,
                    // Pinned to the first rack — always worker
                    // infrastructure under every burst size.
                    origin: Some(0),
                };
                let seed = base_seed ^ 0xada9 ^ (((corr * 100.0) as u64) << 20);
                process.generate_seeded(tree, start, horizon, seed)
            }
            Cell::Weibull { shape } => {
                let process = WeibullProcess {
                    shape: *shape,
                    // ~64 node-minutes per failure over 24 nodes: a
                    // steady drip of several deaths in the window.
                    scale: SimDuration::from_secs(3840),
                };
                let seed = base_seed ^ 0xeb11 ^ (((shape * 100.0) as u64) << 20);
                process.generate_seeded(tree, start, horizon, seed)
            }
        }
    }
}

fn cells(quick: bool) -> Vec<Cell> {
    if quick {
        vec![
            Cell::Cascade {
                burst: 4,
                corr: 0.0,
            },
            Cell::Cascade {
                burst: 4,
                corr: 0.9,
            },
            Cell::Weibull { shape: 0.7 },
        ]
    } else {
        let mut out = Vec::new();
        for burst in [2usize, 4, 8] {
            for corr in [0.0, 0.5, 0.9] {
                out.push(Cell::Cascade { burst, corr });
            }
        }
        out.push(Cell::Weibull { shape: 0.7 });
        out.push(Cell::Weibull { shape: 1.5 });
        out
    }
}

/// The policy roster as series labels.
fn roster() -> Vec<&'static str> {
    vec!["static", "domain-health"]
}

/// One cell × policy outcome.
struct Outcome {
    fidelity: f64,
    migrated: usize,
    activated: usize,
    killed: usize,
}

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;
    let (fail_at, duration) = schedule(quick);
    let fidelity_window = 60u64;
    let cfg = Fig6Config {
        rate: if quick { 300 } else { 1000 },
        window: SimDuration::from_secs(if quick { 10 } else { 30 }),
        ..Fig6Config::default()
    };
    let cells = cells(quick);
    let roster = roster();

    // One leaf job per (cell, policy).
    let mut jobs: Vec<(Cell, &'static str)> = Vec::new();
    for &c in &cells {
        for &p in &roster {
            jobs.push((c, p));
        }
    }
    let outcomes: Vec<Outcome> = ctx.map(jobs, |(cell, policy_name)| {
        let cluster =
            Cluster::racked(N_WORKERS, N_STANDBY, cell.rack_size()).expect("positive rack size");
        let trace = cell.trace(&cluster, fail_at, cfg.seed);
        let scenario: Scenario = ppa_workloads::fig6_scenario(&cfg)
            .placed_with(&RoundRobin, &cluster)
            .expect("fig6 fits the sweep cluster");
        let n = scenario.graph().n_tasks();
        // The initial plan hedges the placement's own rack mapping —
        // identical under both policies; only the control loop differs.
        let cx = scenario
            .placement
            .plan_context(scenario.query.topology())
            .expect("fig6 plans against its racked cluster");
        let plan: TaskSet = StructureAwarePlanner::default()
            .plan(&cx, n / 2)
            .expect("SA plan")
            .tasks;
        let strategy = Strategy::Ppa {
            plan,
            interval_secs: 5,
        };
        let scenario = if policy_name == "domain-health" {
            let budget = n / 2;
            scenario.with_policy(move || Box::new(DomainHealthPolicy::new(Some(budget))))
        } else {
            scenario
        };

        // Steady-state tentative sampling: whatever the control plane
        // does not rescue stays down for the window.
        let mut config = strategy.config(n, cfg.window, cfg.seed);
        config.passive_recovery = false;

        // Golden run: same placement, no failures, static policy.
        let golden = Simulation::run_trace(
            &scenario.query,
            scenario.placement.clone(),
            config.clone(),
            &FailureTrace::new(),
            SimDuration::from_secs(duration),
        );
        let driven: DriveReport = drive_scenario_config(
            ctx,
            &format!("{} policy:{policy_name}", cell.label()),
            &scenario,
            &strategy,
            config,
            &trace,
            duration,
        );
        Outcome {
            fidelity: batch_fidelity(
                &golden,
                &driven.report,
                fail_at,
                fail_at + fidelity_window,
                // One heartbeat of slack, as in placement_sweep.
                SimDuration::from_secs(5),
            ),
            migrated: driven.tasks_migrated(),
            activated: driven.replicas_activated(),
            killed: trace.killed_nodes().len(),
        }
    });

    let idx = |ci: usize, pi: usize| ci * roster.len() + pi;

    let mut fidelity = Figure::new(
        "adaptive_sweep",
        "Post-failure output fidelity per control policy",
        "failure scenario",
        "output fidelity vs golden run",
    );
    for (pi, name) in roster.iter().enumerate() {
        let mut series = Series::new(*name);
        for (ci, cell) in cells.iter().enumerate() {
            series.push(cell.label(), outcomes[idx(ci, pi)].fidelity);
        }
        fidelity.series.push(series);
    }
    fidelity.note(
        "Fidelity = on-time per-batch sink volume over the 60 s after the first \
         failure, relative to a failure-free run of the same placement (5 s lateness \
         budget). Every cell replays one seeded scenario under both policies with \
         passive recovery held down: the static series is the legacy no-control-plane \
         baseline (parity-tested byte-identical to run_trace), the domain-health \
         series evacuates degraded racks' neighbours and re-plans replication \
         through AdaptivePlanner::step against the migrated placement.",
    );

    let mut actions = Figure::new(
        "adaptive_sweep_actions",
        "Control actions taken by the domain-health policy",
        "failure scenario",
        "count",
    );
    let mut migrated = Series::new("tasks migrated");
    let mut activated = Series::new("replicas established");
    let mut killed = Series::new("nodes killed");
    for (ci, cell) in cells.iter().enumerate() {
        let o = &outcomes[idx(ci, 1)];
        migrated.push(cell.label(), o.migrated as f64);
        activated.push(cell.label(), o.activated as f64);
        killed.push(cell.label(), o.killed as f64);
    }
    actions.series.push(migrated);
    actions.series.push(activated);
    actions.series.push(killed);
    actions.note(
        "Interventions behind the fidelity differences: primaries/standbys evacuated \
         off degraded racks and their neighbours, and replicas (re-)established by \
         the post-failure replans. The kill set is identical for both policies in a \
         cell.",
    );

    vec![fidelity, actions]
}
