//! Fig. 8: recovery latency of a *correlated* failure — all 15 nodes
//! hosting the synthetic tasks die simultaneously; the source nodes
//! survive (§VI-A). Reported latency: detection until the *last* failed
//! task restored its pre-failure progress (synchronization-gated).

use super::{completion_latency, fig6_grid, grid_label, run_fig6, schedule, Strategy};
use crate::{Figure, Series};

pub fn run(quick: bool) -> Vec<Figure> {
    let strategies = [
        Strategy::Active { sync_secs: 5 },
        Strategy::Active { sync_secs: 30 },
        Strategy::Checkpoint { interval_secs: 5 },
        Strategy::Checkpoint { interval_secs: 15 },
        Strategy::Checkpoint { interval_secs: 30 },
        Strategy::Storm,
    ];
    let (fail_at, duration) = schedule(quick);

    let mut fig = Figure::new(
        "fig08",
        "Recovery latency of correlated failure",
        "configuration",
        "recovery latency (s)",
    );
    for strategy in &strategies {
        let mut series = Series::new(strategy.label());
        for cfg in fig6_grid(quick) {
            let scenario = ppa_workloads::fig6_scenario(&cfg);
            let report = run_fig6(
                &cfg,
                strategy,
                scenario.worker_kill_set.clone(),
                fail_at,
                duration,
            );
            let graph = scenario.graph();
            series.push(
                grid_label(&cfg),
                completion_latency(&report, |t| !graph.is_source_task(t)),
            );
        }
        fig.series.push(series);
    }
    fig.note(
        "Expected shape (paper): same ordering as Fig. 7 but with larger gaps — \
         passive recovery pays neighbour synchronization, so checkpoint latencies \
         grow faster with rate/interval; Storm beats Checkpoint-30s for short windows.",
    );
    vec![fig]
}
