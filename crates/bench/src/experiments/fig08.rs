//! Fig. 8: recovery latency of a *correlated* failure — all 15 nodes
//! hosting the synthetic tasks die simultaneously; the source nodes
//! survive (§VI-A). Reported latency: detection until the *last* failed
//! task restored its pre-failure progress (synchronization-gated).

use super::{
    completion_latency, fig6_grid, grid_label, kill_set_trace, run_scenario, schedule, Strategy,
};
use crate::runner::RunCtx;
use crate::{Figure, Series};

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;
    let strategies = [
        Strategy::Active { sync_secs: 5 },
        Strategy::Active { sync_secs: 30 },
        Strategy::Checkpoint { interval_secs: 5 },
        Strategy::Checkpoint { interval_secs: 15 },
        Strategy::Checkpoint { interval_secs: 30 },
        Strategy::Storm,
    ];
    let (fail_at, duration) = schedule(quick);
    let grid = fig6_grid(quick);

    // One leaf job per (strategy, grid point).
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    for si in 0..strategies.len() {
        for ci in 0..grid.len() {
            jobs.push((si, ci));
        }
    }
    let latencies: Vec<f64> = ctx.map(jobs, |(si, ci)| {
        let cfg = &grid[ci];
        let scenario = ppa_workloads::fig6_scenario(cfg);
        let report = run_scenario(
            ctx,
            &grid_label(cfg),
            &scenario,
            &strategies[si],
            cfg.window,
            &kill_set_trace(fail_at, scenario.worker_kill_set.clone()),
            duration,
            cfg.seed,
        );
        let graph = scenario.graph();
        completion_latency(&report, |t| !graph.is_source_task(t))
    });

    let mut fig = Figure::new(
        "fig08",
        "Recovery latency of correlated failure",
        "configuration",
        "recovery latency (s)",
    );
    for (si, strategy) in strategies.iter().enumerate() {
        let mut series = Series::new(strategy.label());
        for (ci, cfg) in grid.iter().enumerate() {
            series.push(grid_label(cfg), latencies[si * grid.len() + ci]);
        }
        fig.series.push(series);
    }
    fig.note(
        "Expected shape (paper): same ordering as Fig. 7 but with larger gaps — \
         passive recovery pays neighbour synchronization, so checkpoint latencies \
         grow faster with rate/interval; Storm beats Checkpoint-30s for short windows.",
    );
    vec![fig]
}
