//! Fig. 13: comparing the planners — the optimal dynamic program (DP), the
//! structure-aware planner (SA) and the greedy baseline — on Q1 and Q2, in
//! both predicted OF and measured tentative-output accuracy.

use super::fig12::{ratios, AccuracyHarness, QueryKind};
use crate::runner::RunCtx;
use crate::{Figure, Series};
use ppa_core::planner::Objective;
use ppa_core::{DpPlanner, GreedyPlanner, Planner, StructureAwarePlanner};

const PLANNERS: [&str; 3] = ["DP", "SA", "Greedy"];

fn make_planner(label: &str) -> Box<dyn Planner> {
    match label {
        "DP" => Box::new(DpPlanner::default()),
        "SA" => Box::new(StructureAwarePlanner::default()),
        _ => Box::new(GreedyPlanner),
    }
}

pub fn run(ctx: &RunCtx) -> Vec<Figure> {
    let quick = ctx.quick;
    let kinds = [(QueryKind::Q1, "Q1 top-k"), (QueryKind::Q2, "Q2 incidents")];

    // Leaf phase 1 — harnesses (each includes a golden run).
    let harnesses: Vec<AccuracyHarness> = ctx.map(kinds.to_vec(), |(kind, _)| {
        AccuracyHarness::new(ctx, kind, quick)
    });

    // Leaf phase 2 — one job per (query, planner, ratio): plan + measure.
    let rs = ratios(quick);
    let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
    for ki in 0..kinds.len() {
        for pi in 0..PLANNERS.len() {
            for ri in 0..rs.len() {
                jobs.push((ki, pi, ri));
            }
        }
    }
    let outcomes: Vec<(f64, f64)> = ctx.map(jobs, |(ki, pi, ri)| {
        let harness = &harnesses[ki];
        let cx = harness.context(Objective::OutputFidelity);
        let budget = harness.budget(rs[ri]);
        match make_planner(PLANNERS[pi]).plan(&cx, budget) {
            Ok(plan) => (cx.of_plan(&plan.tasks), harness.measure(&plan.tasks)),
            // DP can explode on large topologies (the paper hits the same
            // wall in §VI-C); report an absent point.
            Err(_) => (f64::NAN, f64::NAN),
        }
    });

    let mut figures = Vec::new();
    for (ki, (_, name)) in kinds.iter().enumerate() {
        let mut of_series: Vec<Series> = Vec::new();
        let mut acc_series: Vec<Series> = Vec::new();
        for (pi, label) in PLANNERS.iter().enumerate() {
            let mut s_of = Series::new(format!("{label}-OF"));
            let mut s_acc = Series::new(format!("{label}-Accuracy"));
            for (ri, ratio) in rs.iter().enumerate() {
                let x = format!("{ratio:.1}");
                let (of, acc) = outcomes[(ki * PLANNERS.len() + pi) * rs.len() + ri];
                s_of.push(x.clone(), of);
                s_acc.push(x, acc);
            }
            of_series.push(s_of);
            acc_series.push(s_acc);
        }

        let mut fig = Figure::new(
            "fig13",
            format!("Planner comparison — {name}"),
            "resource consumption",
            "OF / measured accuracy",
        );
        fig.series = of_series;
        fig.series.extend(acc_series);
        fig.note(
            "Expected shape (paper): SA tracks the optimal DP closely in both OF and \
             accuracy; Greedy is clearly worse, especially at small budgets where its \
             picks do not assemble complete MC-trees.",
        );
        figures.push(fig);
    }
    figures
}
