//! Fig. 13: comparing the planners — the optimal dynamic program (DP), the
//! structure-aware planner (SA) and the greedy baseline — on Q1 and Q2, in
//! both predicted OF and measured tentative-output accuracy.

use super::fig12::{ratios, AccuracyHarness, QueryKind};
use crate::{Figure, Series};
use ppa_core::planner::Objective;
use ppa_core::{DpPlanner, GreedyPlanner, Planner, StructureAwarePlanner};

pub fn run(quick: bool) -> Vec<Figure> {
    let mut figures = Vec::new();
    for (kind, name) in [(QueryKind::Q1, "Q1 top-k"), (QueryKind::Q2, "Q2 incidents")] {
        let harness = AccuracyHarness::new(kind, quick);
        let cx = harness.context(Objective::OutputFidelity);

        let planners: Vec<(&str, Box<dyn Planner>)> = vec![
            ("DP", Box::new(DpPlanner::default())),
            ("SA", Box::new(StructureAwarePlanner::default())),
            ("Greedy", Box::new(GreedyPlanner)),
        ];

        let mut of_series: Vec<Series> = Vec::new();
        let mut acc_series: Vec<Series> = Vec::new();
        for (label, planner) in &planners {
            let mut s_of = Series::new(format!("{label}-OF"));
            let mut s_acc = Series::new(format!("{label}-Accuracy"));
            for ratio in ratios(quick) {
                let x = format!("{ratio:.1}");
                let budget = harness.budget(ratio);
                match planner.plan(&cx, budget) {
                    Ok(plan) => {
                        s_of.push(x.clone(), cx.of_plan(&plan.tasks));
                        s_acc.push(x.clone(), harness.measure(&plan.tasks));
                    }
                    Err(_) => {
                        // DP can explode on large topologies (the paper hits
                        // the same wall in §VI-C); report an absent point.
                        s_of.push(x.clone(), f64::NAN);
                        s_acc.push(x.clone(), f64::NAN);
                    }
                }
            }
            of_series.push(s_of);
            acc_series.push(s_acc);
        }

        let mut fig = Figure::new(
            "fig13",
            format!("Planner comparison — {name}"),
            "resource consumption",
            "OF / measured accuracy",
        );
        fig.series = of_series;
        fig.series.extend(acc_series);
        fig.note(
            "Expected shape (paper): SA tracks the optimal DP closely in both OF and \
             accuracy; Greedy is clearly worse, especially at small budgets where its \
             picks do not assemble complete MC-trees.",
        );
        figures.push(fig);
    }
    figures
}
