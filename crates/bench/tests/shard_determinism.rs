//! Shard-count determinism: every observable harness output — the
//! rendered markdown report, the deterministic run-log payloads, the
//! recorded engine-event traces — must be byte-identical whether the
//! engine runs its legacy single-threaded event loop (`shards = 1`) or
//! the sharded lanes (`shards = 4, 8`). This is the cross-shard mirror
//! of the `--jobs` determinism tests in `harness.rs` /
//! `trace_determinism.rs`.

use ppa_bench::experiments::scale_sweep::{self, ScaleSpec};
use ppa_bench::{render_markdown, run_experiments, RunOptions};
use ppa_engine::{FailureTrace, FaultFeed, Simulation, StaticPolicy};
use ppa_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The experiments the suite replays per shard count: `refail_sweep`
/// exercises failures, replica takeover, catch-up and control policies;
/// `scale_sweep` exercises wide failure-free spans (and itself varies
/// `EngineConfig::shards` per cell).
const IDS: [&str; 2] = ["refail_sweep", "scale_sweep"];

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ppa_shard_determinism_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One full harness pass at a shard count: rendered markdown, the
/// deterministic JSON payload of every logged run, and all trace files.
fn observe(shards: usize, dir: &Path) -> (String, String, BTreeMap<String, String>) {
    let summary = run_experiments(&RunOptions {
        quick: true,
        jobs: 2,
        shards: Some(shards),
        only: IDS.iter().map(|s| s.to_string()).collect(),
        trace_dir: Some(dir.to_path_buf()),
        ..RunOptions::default()
    });
    assert_eq!(summary.results.len(), IDS.len(), "both experiments ran");
    let mut runs = String::new();
    for result in &summary.results {
        for log in &result.runs {
            runs.push_str(&log.to_json().to_pretty());
        }
    }
    let mut traces = BTreeMap::new();
    for id in IDS {
        let sub = dir.join(id);
        if !sub.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&sub).expect("trace dir exists") {
            let entry = entry.expect("readable entry");
            let name = format!("{id}/{}", entry.file_name().to_string_lossy());
            let body = std::fs::read_to_string(entry.path()).expect("readable trace");
            traces.insert(name, body);
        }
    }
    assert!(!traces.is_empty(), "shards={shards} recorded no traces");
    (render_markdown(&summary), runs, traces)
}

#[test]
fn all_outputs_identical_across_shard_counts() {
    let base_dir = scratch_dir("s1");
    let (base_md, base_runs, base_traces) = observe(1, &base_dir);
    assert!(
        base_md.contains("scale_sweep"),
        "baseline report mentions the sweep"
    );
    for shards in [4, 8] {
        let dir = scratch_dir(&format!("s{shards}"));
        let (md, runs, traces) = observe(shards, &dir);
        assert_eq!(base_md, md, "markdown diverged at shards={shards}");
        assert_eq!(base_runs, runs, "run logs diverged at shards={shards}");
        assert_eq!(
            base_traces.keys().collect::<Vec<_>>(),
            traces.keys().collect::<Vec<_>>(),
            "trace file set diverged at shards={shards}"
        );
        for (name, body) in &base_traces {
            assert_eq!(
                body, &traces[name],
                "trace {name} diverged at shards={shards}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base_dir);
}

/// The throughput counters flushed into `DriveReport::metrics` must agree
/// exactly with the report's own deterministic totals, at 1 and N shards.
#[test]
fn throughput_metrics_match_report_totals() {
    for shards in [1, 4] {
        let (scenario, _strategy, config) = scale_sweep::build(&ScaleSpec {
            workers: 12,
            standby: 2,
            width: 12,
            rate: 50,
            duration_secs: 6,
            shards,
        });
        let mut sim = Simulation::new(&scenario.query, scenario.placement.clone(), config);
        let driven = sim
            .drive(
                &FaultFeed::from_trace(FailureTrace::new()),
                &mut StaticPolicy,
                SimTime::ZERO + SimDuration::from_secs(6),
            )
            .expect("failure-free drive succeeds");
        let counter = |name: &str| -> u64 {
            driven
                .metrics
                .counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("shards={shards}: metric {name} missing"))
        };
        assert!(driven.report.events > 0, "the run processed events");
        assert!(driven.report.tuples_moved > 0, "the run moved tuples");
        assert_eq!(
            counter("engine.events.processed"),
            driven.report.events,
            "shards={shards}"
        );
        assert_eq!(
            counter("engine.tuples.moved"),
            driven.report.tuples_moved,
            "shards={shards}"
        );
    }
}
