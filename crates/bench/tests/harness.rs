//! Harness integration tests: every registered experiment must run at quick
//! scale, and the parallel runner must be observably deterministic — the
//! rendered report and serialized figures/run logs may not depend on the
//! worker count.

use ppa_bench::{registry, render_markdown, run_experiments, RunOptions};

fn opts(jobs: usize) -> RunOptions {
    RunOptions {
        quick: true,
        jobs,
        ..RunOptions::default()
    }
}

#[test]
fn every_registry_entry_runs_quick_and_yields_figures() {
    let summary = run_experiments(&opts(4));
    assert_eq!(
        summary.results.len(),
        registry().len(),
        "every experiment ran"
    );
    for result in &summary.results {
        assert!(
            !result.figures.is_empty(),
            "{} returned no figures",
            result.id
        );
        for fig in &result.figures {
            assert!(
                !fig.series.is_empty(),
                "{}: figure {} has no series",
                result.id,
                fig.id
            );
            for series in &fig.series {
                assert!(
                    !series.points.is_empty(),
                    "{}: figure {} series {} has no points",
                    result.id,
                    fig.id,
                    series.label
                );
            }
        }
    }
    // The recovery experiments must also have logged their runs.
    for id in [
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "tentative",
        "corr_sweep",
        "placement_sweep",
        "adaptive_sweep",
        "refail_sweep",
        "scale_sweep",
        "approx_sweep",
    ] {
        let result = summary.results.iter().find(|r| r.id == id).unwrap();
        assert!(
            !result.runs.is_empty(),
            "{id} logged no runs for the JSON reporter"
        );
    }

    // The placement sweep's headline claim: fault-domain anti-affinity
    // strictly beats the packed adversarial baseline on post-burst output
    // fidelity in at least one swept cell.
    let sweep = summary
        .results
        .iter()
        .find(|r| r.id == "placement_sweep")
        .unwrap();
    let fig = sweep
        .figures
        .iter()
        .find(|f| f.id == "placement_sweep")
        .expect("fidelity figure present");
    let series = |label: &str| {
        &fig.series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("{label} series missing"))
            .points
    };
    let packed = series("Packed");
    let spread = series("DomainSpread");
    assert_eq!(packed.len(), spread.len());
    assert!(
        packed
            .iter()
            .zip(spread)
            .any(|((_, p), (_, s))| s > &(p + 1e-9)),
        "DomainSpread never strictly dominated Packed on fidelity: \
         packed={packed:?} spread={spread:?}"
    );

    // The adaptive sweep's headline claim: the domain-health control
    // policy strictly beats the static (no-control-plane) baseline on
    // post-failure fidelity in at least one cell, and never does worse.
    let sweep = summary
        .results
        .iter()
        .find(|r| r.id == "adaptive_sweep")
        .unwrap();
    let fig = sweep
        .figures
        .iter()
        .find(|f| f.id == "adaptive_sweep")
        .expect("fidelity figure present");
    let series = |label: &str| {
        &fig.series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("{label} series missing"))
            .points
    };
    let static_series = series("static");
    let adaptive = series("domain-health");
    assert_eq!(static_series.len(), adaptive.len());
    assert!(
        static_series
            .iter()
            .zip(adaptive)
            .any(|((_, s), (_, a))| a > &(s + 1e-9)),
        "domain-health never strictly beat static on fidelity: \
         static={static_series:?} adaptive={adaptive:?}"
    );
    assert!(
        static_series
            .iter()
            .zip(adaptive)
            .all(|((_, s), (_, a))| a >= &(s - 1e-9)),
        "domain-health fell below static in a cell: \
         static={static_series:?} adaptive={adaptive:?}"
    );

    // The refail sweep's headline claim: killing activated replicas in a
    // second cascade wave opens honest second outages (the pre-lifecycle
    // runtime recorded none), only the control plane closes them, and
    // that gap is visible in the second outage window's fidelity.
    let sweep = summary
        .results
        .iter()
        .find(|r| r.id == "refail_sweep")
        .unwrap();
    let histories = sweep
        .figures
        .iter()
        .find(|f| f.id == "refail_sweep_outages")
        .expect("outage-history figure present");
    let series = |label: &str| {
        &histories
            .series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("{label} series missing"))
            .points
    };
    assert!(
        series("second outages (static)")
            .iter()
            .any(|(_, v)| *v > 0.0),
        "no second outages recorded under static: {histories:?}"
    );
    assert!(
        series("second recoveries (static)")
            .iter()
            .all(|(_, v)| *v == 0.0),
        "static cannot close a second outage with passive recovery down: {histories:?}"
    );
    assert!(
        series("second recoveries (domain-health)")
            .iter()
            .any(|(_, v)| *v > 0.0),
        "domain-health must re-establish replicas for re-failed tasks: {histories:?}"
    );
    let fidelity = sweep
        .figures
        .iter()
        .find(|f| f.id == "refail_sweep")
        .expect("fidelity figure present");
    let series = |label: &str| {
        &fidelity
            .series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("{label} series missing"))
            .points
    };
    let static_w2 = series("static");
    let adaptive_w2 = series("domain-health");
    assert_eq!(static_w2.len(), adaptive_w2.len());
    assert!(
        static_w2
            .iter()
            .zip(adaptive_w2)
            .all(|((_, s), (_, a))| a >= &(s - 1e-9))
            && static_w2
                .iter()
                .zip(adaptive_w2)
                .any(|((_, s), (_, a))| a > &(s + 1e-9)),
        "domain-health must dominate static inside the re-failure window: \
         static={static_w2:?} adaptive={adaptive_w2:?}"
    );

    // The approx sweep's headline claim: in at least one swept cell an
    // approximate strategy strictly beats exact checkpointing on recovery
    // completion latency, and that same cell carries a quantified
    // fidelity cost — an engine-recorded floor strictly below 1.0.
    let sweep = summary
        .results
        .iter()
        .find(|r| r.id == "approx_sweep")
        .unwrap();
    let latency = sweep
        .figures
        .iter()
        .find(|f| f.id == "approx_sweep")
        .expect("latency figure present");
    let fidelity = sweep
        .figures
        .iter()
        .find(|f| f.id == "approx_sweep_fidelity")
        .expect("fidelity figure present");
    let checkpoint = &latency
        .series
        .iter()
        .find(|s| s.label == "Checkpoint-5s")
        .expect("Checkpoint-5s series missing")
        .points;
    let approx_labels: Vec<&str> = latency
        .series
        .iter()
        .map(|s| s.label.as_str())
        .filter(|l| l.starts_with("Approx-"))
        .collect();
    assert!(!approx_labels.is_empty(), "no approximate series swept");
    let won = approx_labels.iter().any(|label| {
        let approx = &latency
            .series
            .iter()
            .find(|s| s.label == *label)
            .unwrap()
            .points;
        let floors = &fidelity
            .series
            .iter()
            .find(|s| s.label == format!("floor ({label})"))
            .unwrap_or_else(|| panic!("floor series missing for {label}"))
            .points;
        assert_eq!(approx.len(), checkpoint.len());
        assert_eq!(floors.len(), checkpoint.len());
        checkpoint
            .iter()
            .zip(approx)
            .zip(floors)
            .any(|(((_, cp), (_, ap)), (_, floor))| ap + 1e-9 < *cp && *floor < 1.0 - 1e-9)
    });
    assert!(
        won,
        "no cell where an approximate strategy beat Checkpoint-5s on completion \
         latency at a recorded fidelity cost: {latency:?} {fidelity:?}"
    );
}

#[test]
fn filter_restricts_a_run_to_matching_ids() {
    let summary = run_experiments(&RunOptions {
        only: vec!["fig07".into(), "fig14".into()],
        filter: Some("14".into()),
        ..opts(2)
    });
    assert_eq!(
        summary.results.iter().map(|r| r.id).collect::<Vec<_>>(),
        vec!["fig14"],
        "--filter composes with explicit ids"
    );
}

#[test]
fn filter_matching_nothing_exits_nonzero_listing_known_ids() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(["--quick", "--filter", "zzz-no-such-experiment"])
        .output()
        .expect("spawn reproduce");
    assert!(
        !out.status.success(),
        "a zero-match filter must exit nonzero, not silently run nothing"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--filter \"zzz-no-such-experiment\" matched no experiment"),
        "stderr names the filter: {stderr}"
    );
    assert!(
        stderr.contains("fig08"),
        "stderr lists the known ids: {stderr}"
    );
    assert!(out.stdout.is_empty(), "no report on stdout");
}

#[test]
fn jobs_1_and_jobs_4_produce_identical_serialized_output() {
    let only: Vec<String> = vec![
        "fig07".into(),
        "fig10".into(),
        "fig12".into(),
        "fig14".into(),
        "corr_sweep".into(),
        "placement_sweep".into(),
        "adaptive_sweep".into(),
        "refail_sweep".into(),
        "approx_sweep".into(),
    ];
    let serial = run_experiments(&RunOptions {
        only: only.clone(),
        ..opts(1)
    });
    let parallel = run_experiments(&RunOptions { only, ..opts(4) });

    // The stdout report is byte-identical.
    assert_eq!(render_markdown(&serial), render_markdown(&parallel));

    // So is every figure's and every run log's serialization (wall-clock
    // timings are deliberately outside the compared payload).
    assert_eq!(serial.results.len(), parallel.results.len());
    for (a, b) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(a.id, b.id, "registry order is preserved");
        let figs_a: Vec<String> = a.figures.iter().map(|f| f.to_json().to_pretty()).collect();
        let figs_b: Vec<String> = b.figures.iter().map(|f| f.to_json().to_pretty()).collect();
        assert_eq!(figs_a, figs_b, "{}: figures differ across job counts", a.id);
        let runs_a: Vec<String> = a.runs.iter().map(|l| l.to_json().to_pretty()).collect();
        let runs_b: Vec<String> = b.runs.iter().map(|l| l.to_json().to_pretty()).collect();
        assert_eq!(
            runs_a, runs_b,
            "{}: run logs differ across job counts",
            a.id
        );
    }
}
