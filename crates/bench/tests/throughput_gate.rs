//! The sharded event loop's performance gate: on a wide homogeneous
//! cluster (the `scale_sweep` workload at paper scale), `shards = 4`
//! must finish a single run at least 2x faster than `shards = 1`.
//!
//! The gate only measures where the measurement is meaningful: release
//! builds (debug codegen distorts the UDF/scheduler ratio the claim is
//! about) on hosts with ≥ 4 usable cores (with fewer, the lanes
//! time-slice one core and no wall-clock win is possible). Anywhere
//! else it skips loudly instead of asserting noise.

use ppa_bench::experiments::scale_sweep::{build, ScaleSpec};
use ppa_bench::stopwatch::Stopwatch;
use ppa_engine::{FailureTrace, Simulation};
use ppa_sim::SimDuration;
use std::time::Duration;

const DURATION_SECS: u64 = 30;

/// One timed run; returns (best wall over `reps`, events processed).
fn best_wall(spec: &ScaleSpec, reps: usize) -> (Duration, u64) {
    let mut best = Duration::MAX;
    let mut events = 0;
    for _ in 0..reps {
        let (scenario, _strategy, config) = build(spec);
        let watch = Stopwatch::start();
        let report = Simulation::run_trace(
            &scenario.query,
            scenario.placement.clone(),
            config,
            &FailureTrace::new(),
            SimDuration::from_secs(DURATION_SECS),
        );
        best = best.min(watch.elapsed());
        events = report.events;
    }
    (best, events)
}

#[test]
fn four_shards_halve_wall_clock_on_a_wide_cluster() {
    if cfg!(debug_assertions) {
        eprintln!("skipping throughput gate: debug build (run with --release)");
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping throughput gate: {cores} core(s) < 4");
        return;
    }
    // Paper-scale width with a heavy per-batch tuple load, so per-span
    // UDF work dominates the sequential merge/apply section.
    let spec = |shards: usize| ScaleSpec {
        workers: 96,
        standby: 12,
        width: 96,
        rate: 800,
        duration_secs: DURATION_SECS,
        shards,
    };
    let (sequential, seq_events) = best_wall(&spec(1), 3);
    let (sharded, shard_events) = best_wall(&spec(4), 3);
    assert_eq!(
        seq_events, shard_events,
        "shard count changed the deterministic event total"
    );
    let speedup = sequential.as_secs_f64() / sharded.as_secs_f64();
    eprintln!(
        "throughput gate: shards=1 {sequential:?}, shards=4 {sharded:?}, speedup {speedup:.2}x"
    );
    assert!(
        speedup >= 2.0,
        "shards=4 must be >= 2x faster than shards=1 on {cores} cores: \
         {sequential:?} vs {sharded:?} ({speedup:.2}x)"
    );
}
