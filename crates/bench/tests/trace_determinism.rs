//! Trace-recording invariants: `--trace-dir` output is byte-identical
//! across worker counts, and every run's recorded event stream agrees
//! with its run log's outage accounting.

use ppa_bench::{run_experiments, RunOptions};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ppa_trace_determinism_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_refail_sweep(jobs: usize, dir: &Path) -> ppa_bench::runner::RunSummary {
    let summary = run_experiments(&RunOptions {
        quick: true,
        jobs,
        only: vec!["refail_sweep".into()],
        trace_dir: Some(dir.to_path_buf()),
        ..RunOptions::default()
    });
    assert_eq!(summary.results.len(), 1, "exactly refail_sweep ran");
    summary
}

/// All trace files under `dir`, name → contents.
fn slurp(dir: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir.join("refail_sweep")).expect("trace dir exists") {
        let entry = entry.expect("readable entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        let body = std::fs::read_to_string(entry.path()).expect("readable trace");
        out.insert(name, body);
    }
    out
}

/// Mirrors the runner's label → filename collapse.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[test]
fn refail_sweep_traces_are_byte_identical_across_job_counts() {
    let dir_serial = scratch_dir("serial");
    let dir_parallel = scratch_dir("parallel");
    run_refail_sweep(1, &dir_serial);
    run_refail_sweep(4, &dir_parallel);

    let serial = slurp(&dir_serial);
    let parallel = slurp(&dir_parallel);
    assert!(!serial.is_empty(), "refail_sweep recorded traces");
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "same trace file set for any worker count"
    );
    for (name, body) in &serial {
        assert_eq!(
            body, &parallel[name],
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }

    let _ = std::fs::remove_dir_all(&dir_serial);
    let _ = std::fs::remove_dir_all(&dir_parallel);
}

#[test]
fn trace_event_counts_match_the_run_log_outage_accounting() {
    let dir = scratch_dir("counts");
    let summary = run_refail_sweep(2, &dir);
    let result = &summary.results[0];
    assert!(!result.runs.is_empty(), "refail_sweep logged runs");

    // Run logs and trace files are both sorted by the same
    // (scenario, strategy, fail_at_s, kill_nodes) key, and every driven
    // run records exactly one trace — so replaying the runner's
    // index-suffix naming over the sorted logs recovers each run's file.
    let mut used: BTreeMap<String, usize> = BTreeMap::new();
    let mut total_outages = 0;
    for log in &result.runs {
        let base = sanitize(&format!("{}__{}", log.scenario, log.strategy));
        let n = used.entry(base.clone()).or_insert(0);
        let name = if *n == 0 {
            base.clone()
        } else {
            format!("{base}__{n}")
        };
        *n += 1;

        let jsonl = std::fs::read_to_string(dir.join("refail_sweep").join(format!("{name}.jsonl")))
            .unwrap_or_else(|e| panic!("missing trace {name}.jsonl for run log: {e}"));
        let count = |needle: &str| jsonl.lines().filter(|l| l.contains(needle)).count();

        assert_eq!(
            count("\"kind\":\"outage_opened\""),
            log.outages,
            "{name}: opened-outage events vs run log"
        );
        assert_eq!(
            count("\"refail\":true"),
            log.refails,
            "{name}: refail events vs run log"
        );
        assert_eq!(
            count("\"kind\":\"replica_activated\"") + count("\"kind\":\"restore_done\""),
            log.outages_recovered,
            "{name}: closing events vs recovered outages"
        );
        total_outages += log.outages;

        // The Chrome export rides along and wraps the same stream.
        let chrome =
            std::fs::read_to_string(dir.join("refail_sweep").join(format!("{name}.chrome.json")))
                .unwrap_or_else(|e| panic!("missing trace {name}.chrome.json: {e}"));
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert_eq!(
            chrome.matches("\"name\":\"outage\"").count()
                + chrome.matches("\"name\":\"refail outage\"").count(),
            log.outages,
            "{name}: one Chrome span per outage"
        );
    }
    assert!(
        total_outages > 0,
        "the sweep's kill waves must open outages"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
