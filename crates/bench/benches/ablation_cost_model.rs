//! Ablation bench for the calibrated cost model (README.md §Design notes):
//! how sensitive is the reproduced recovery-latency ordering to the replay
//! cost constant?
//!
//! For each replay-cost multiplier the correlated-failure run must keep the
//! paper's ordering `Active < Checkpoint-5 < Checkpoint-30`; the bench
//! asserts it while timing the runs.

use ppa_bench::stopwatch::Group;
use ppa_engine::{EngineConfig, FailureSpec, FtMode, Simulation};
use ppa_sim::{SimDuration, SimTime};
use ppa_workloads::{fig6_scenario, Fig6Config};

fn latency(cfg: &Fig6Config, mode: FtMode, replay_mult: f64) -> f64 {
    let scenario = fig6_scenario(cfg);
    let mut config = EngineConfig {
        mode,
        ..EngineConfig::default()
    };
    config.costs.replay_per_tuple = config.costs.replay_per_tuple.mul_f64(replay_mult);
    let report = Simulation::run(
        &scenario.query,
        scenario.placement.clone(),
        config,
        vec![FailureSpec {
            at: SimTime::from_secs(40),
            nodes: scenario.worker_kill_set.clone(),
        }],
        SimDuration::from_secs(140),
    );
    report
        .mean_recovery_latency()
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::INFINITY)
}

fn main() {
    let cfg = Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(10),
        ..Fig6Config::default()
    };
    let n_tasks = 31;
    let group = Group::new("ablation_replay_cost").sample_size(10);
    for mult in [0.5f64, 1.0, 2.0] {
        group.bench(&format!("replay-x{mult}"), || {
            let active = latency(&cfg, FtMode::active(n_tasks), mult);
            let cp5 = latency(
                &cfg,
                FtMode::checkpoint(n_tasks, SimDuration::from_secs(5)),
                mult,
            );
            let cp30 = latency(
                &cfg,
                FtMode::checkpoint(n_tasks, SimDuration::from_secs(30)),
                mult,
            );
            assert!(
                active < cp5 && cp5 < cp30,
                "ordering broke at replay multiplier {mult}: \
                 active {active:.2}s, cp5 {cp5:.2}s, cp30 {cp30:.2}s"
            );
            (active, cp5, cp30)
        });
    }
}
