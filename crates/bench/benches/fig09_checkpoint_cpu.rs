//! Bench for the Fig. 9 experiment: a steady checkpointing run per
//! checkpoint interval at reduced scale.

use ppa_bench::experiments::{run_fig6, Strategy};
use ppa_bench::stopwatch::Group;
use ppa_bench::RunCtx;
use ppa_engine::FailureTrace;
use ppa_sim::SimDuration;
use ppa_workloads::Fig6Config;

fn main() {
    let ctx = RunCtx::serial(true);
    let cfg = Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(30),
        ..Fig6Config::default()
    };
    let group = Group::new("fig09_checkpoint_cpu").sample_size(10);
    for interval in [1u64, 15] {
        group.bench(&format!("interval-{interval}s"), || {
            let report = run_fig6(
                &ctx,
                &cfg,
                &Strategy::Checkpoint {
                    interval_secs: interval,
                },
                &FailureTrace::new(),
                60,
            );
            assert!(report.mean_checkpoint_ratio() > 0.0);
            report.events
        });
    }
}
