//! Criterion bench for the Fig. 9 experiment: a steady checkpointing run
//! per checkpoint interval at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppa_bench::experiments::{run_fig6, Strategy};
use ppa_sim::SimDuration;
use ppa_workloads::Fig6Config;

fn bench(c: &mut Criterion) {
    let cfg = Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(30),
        ..Fig6Config::default()
    };
    let mut group = c.benchmark_group("fig09_checkpoint_cpu");
    group.sample_size(10);
    for interval in [1u64, 15] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("interval-{interval}s")),
            &interval,
            |b, &interval| {
                b.iter(|| {
                    let report = run_fig6(
                        &cfg,
                        &Strategy::Checkpoint { interval_secs: interval },
                        vec![],
                        0,
                        60,
                    );
                    assert!(report.mean_checkpoint_ratio() > 0.0);
                    report.events
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
