//! Bench for the Fig. 7 experiment: one single-node-failure recovery run
//! per strategy at reduced scale. The timed quantity is the simulation
//! wall time; the reproduced metric itself comes from
//! `cargo run -p ppa-bench --bin reproduce`.

use ppa_bench::experiments::{kill_set_trace, run_fig6, Strategy};
use ppa_bench::stopwatch::Group;
use ppa_bench::RunCtx;
use ppa_sim::SimDuration;
use ppa_workloads::Fig6Config;

fn main() {
    let ctx = RunCtx::serial(true);
    let cfg = Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(10),
        ..Fig6Config::default()
    };
    let scenario = ppa_workloads::fig6_scenario(&cfg);
    let node = scenario.placement.primary[16]; // first O1 task
    let group = Group::new("fig07_single_failure").sample_size(10);
    for strategy in [
        Strategy::Active { sync_secs: 5 },
        Strategy::Checkpoint { interval_secs: 15 },
        Strategy::Storm,
    ] {
        group.bench(&strategy.label(), || {
            let report = run_fig6(&ctx, &cfg, &strategy, &kill_set_trace(40, vec![node]), 120);
            assert!(report.mean_recovery_latency().is_some());
            report.events
        });
    }
}
