//! Criterion bench for the Fig. 7 experiment: one single-node-failure
//! recovery run per strategy at reduced scale. The timed quantity is the
//! simulation wall time; the reproduced metric itself comes from
//! `cargo run -p ppa-bench --bin reproduce`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppa_bench::experiments::{run_fig6, Strategy};
use ppa_sim::SimDuration;
use ppa_workloads::Fig6Config;

fn bench(c: &mut Criterion) {
    let cfg = Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(10),
        ..Fig6Config::default()
    };
    let scenario = ppa_workloads::fig6_scenario(&cfg);
    let node = scenario.placement.primary[16]; // first O1 task
    let mut group = c.benchmark_group("fig07_single_failure");
    group.sample_size(10);
    for strategy in [
        Strategy::Active { sync_secs: 5 },
        Strategy::Checkpoint { interval_secs: 15 },
        Strategy::Storm,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    let report = run_fig6(&cfg, strategy, vec![node], 40, 120);
                    assert!(report.mean_recovery_latency().is_some());
                    report.events
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
