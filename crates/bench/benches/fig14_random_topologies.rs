//! Bench for the Fig. 14 experiment: SA and Greedy planning over a small
//! random-topology corpus.

use ppa_bench::stopwatch::Group;
use ppa_core::{
    GreedyPlanner, PlanContext, Planner, RandomTopologySpec, Skew, StructureAwarePlanner,
    TopologyStyle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = RandomTopologySpec {
        n_operators: (5, 8),
        parallelism: (1, 8),
        join_fraction: 0.5,
        skew: Skew::Zipf { s: 0.1 },
        style: TopologyStyle::Structured,
        ..RandomTopologySpec::default()
    };
    let mut rng = StdRng::seed_from_u64(14);
    let corpus: Vec<_> = (0..4).map(|_| spec.generate(&mut rng)).collect();
    let contexts: Vec<PlanContext> = corpus
        .iter()
        .map(|t| PlanContext::new(t).unwrap())
        .collect();

    let group = Group::new("fig14_random_topologies").sample_size(10);
    let planners: Vec<(&str, Box<dyn Planner>)> = vec![
        ("SA", Box::new(StructureAwarePlanner::default())),
        ("Greedy", Box::new(GreedyPlanner)),
    ];
    for (label, planner) in &planners {
        group.bench(label, || {
            let mut total = 0.0;
            for cx in &contexts {
                let budget = (cx.n_tasks() as f64 * 0.3).round() as usize;
                total += planner.plan(cx, budget).unwrap().value;
            }
            total
        });
    }
}
