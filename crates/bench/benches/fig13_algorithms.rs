//! Bench for the Fig. 13 experiment: planning time of DP, SA and Greedy on
//! the Q1 topology (the quantity the paper discusses as the DP's
//! prohibitive complexity).

use ppa_bench::stopwatch::Group;
use ppa_core::{DpPlanner, GreedyPlanner, PlanContext, Planner, StructureAwarePlanner};
use ppa_workloads::{q1_scenario, Q1Config};

fn main() {
    let scenario = q1_scenario(&Q1Config::default());
    let cx = PlanContext::new(scenario.query.topology()).unwrap();
    let budget = cx.n_tasks() / 2;
    // Warm the MC-tree cache so DP timing excludes enumeration.
    let _ = cx.mc_trees().unwrap();

    let group = Group::new("fig13_planning").sample_size(10);
    let planners: Vec<(&str, Box<dyn Planner>)> = vec![
        ("DP", Box::new(DpPlanner::default())),
        ("SA", Box::new(StructureAwarePlanner::default())),
        ("Greedy", Box::new(GreedyPlanner)),
    ];
    for (label, planner) in &planners {
        group.bench(label, || {
            let plan = planner.plan(&cx, budget).unwrap();
            assert!(plan.value >= 0.0);
            plan.resources()
        });
    }
}
