//! Criterion bench for the Fig. 12 experiment: one accuracy measurement of
//! an SA plan under the worst-case correlated failure (golden run built
//! once outside the timing loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppa_bench::experiments::fig12::{AccuracyHarness, QueryKind};
use ppa_core::planner::Objective;
use ppa_core::{Planner, StructureAwarePlanner};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_metric_validation");
    group.sample_size(10);
    for (kind, label) in [(QueryKind::Q1, "q1"), (QueryKind::Q2, "q2")] {
        let harness = AccuracyHarness::new(kind, true);
        let cx = harness.context(Objective::OutputFidelity);
        let plan = StructureAwarePlanner::default()
            .plan(&cx, harness.budget(0.5))
            .unwrap()
            .tasks;
        group.bench_with_input(BenchmarkId::from_parameter(label), &plan, |b, plan| {
            b.iter(|| {
                let acc = harness.measure(plan);
                assert!((0.0..=1.0).contains(&acc));
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
