//! Bench for the Fig. 12 experiment: one accuracy measurement of an SA
//! plan under the worst-case correlated failure (golden run built once
//! outside the timing loop).

use ppa_bench::experiments::fig12::{AccuracyHarness, QueryKind};
use ppa_bench::stopwatch::Group;
use ppa_bench::RunCtx;
use ppa_core::planner::Objective;
use ppa_core::{Planner, StructureAwarePlanner};

fn main() {
    let ctx = RunCtx::serial(true);
    let group = Group::new("fig12_metric_validation").sample_size(10);
    for (kind, label) in [(QueryKind::Q1, "q1"), (QueryKind::Q2, "q2")] {
        let harness = AccuracyHarness::new(&ctx, kind, true);
        let cx = harness.context(Objective::OutputFidelity);
        let plan = StructureAwarePlanner::default()
            .plan(&cx, harness.budget(0.5))
            .unwrap()
            .tasks;
        group.bench(label, || {
            let acc = harness.measure(&plan);
            assert!((0.0..=1.0).contains(&acc));
            acc
        });
    }
}
