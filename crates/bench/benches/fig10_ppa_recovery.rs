//! Bench for the Fig. 10 experiment: correlated-failure recovery under PPA
//! plans with different active shares, at reduced scale.

use ppa_bench::experiments::{kill_set_trace, run_fig6, Strategy};
use ppa_bench::stopwatch::Group;
use ppa_bench::RunCtx;
use ppa_core::{PlanContext, Planner, StructureAwarePlanner, TaskSet};
use ppa_sim::SimDuration;
use ppa_workloads::Fig6Config;

fn main() {
    let ctx = RunCtx::serial(true);
    let cfg = Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(10),
        ..Fig6Config::default()
    };
    let scenario = ppa_workloads::fig6_scenario(&cfg);
    let kill = scenario.worker_kill_set.clone();
    let n = scenario.graph().n_tasks();
    let cx = PlanContext::new(scenario.query.topology()).unwrap();
    let half = StructureAwarePlanner::default()
        .plan(&cx, n / 2)
        .unwrap()
        .tasks;

    let group = Group::new("fig10_ppa_recovery").sample_size(10);
    for (label, plan) in [
        ("PPA-1.0", TaskSet::full(n)),
        ("PPA-0.5", half),
        ("PPA-0", TaskSet::empty(n)),
    ] {
        group.bench(label, || {
            let report = run_fig6(
                &ctx,
                &cfg,
                &Strategy::Ppa {
                    plan: plan.clone(),
                    interval_secs: 15,
                },
                &kill_set_trace(40, kill.clone()),
                130,
            );
            assert_eq!(report.recoveries.len(), 15);
            report.events
        });
    }
}
