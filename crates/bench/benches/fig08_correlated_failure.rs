//! Bench for the Fig. 8 experiment: one correlated-failure recovery run
//! per strategy at reduced scale.

use ppa_bench::experiments::{kill_set_trace, run_fig6, Strategy};
use ppa_bench::stopwatch::Group;
use ppa_bench::RunCtx;
use ppa_sim::SimDuration;
use ppa_workloads::Fig6Config;

fn main() {
    let ctx = RunCtx::serial(true);
    let cfg = Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(10),
        ..Fig6Config::default()
    };
    let scenario = ppa_workloads::fig6_scenario(&cfg);
    let kill = scenario.worker_kill_set.clone();
    let group = Group::new("fig08_correlated_failure").sample_size(10);
    for strategy in [
        Strategy::Active { sync_secs: 5 },
        Strategy::Checkpoint { interval_secs: 15 },
        Strategy::Storm,
    ] {
        group.bench(&strategy.label(), || {
            let report = run_fig6(
                &ctx,
                &cfg,
                &strategy,
                &kill_set_trace(40, kill.clone()),
                130,
            );
            assert_eq!(report.recoveries.len(), 15);
            report.events
        });
    }
}
