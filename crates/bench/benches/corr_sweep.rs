//! Bench for the corr_sweep experiment: one generated-cascade recovery run
//! per strategy at reduced scale. The timed quantity is the simulation
//! wall time; the reproduced metric itself comes from
//! `cargo run -p ppa-bench --bin reproduce`.

use ppa_bench::experiments::{run_fig6, Strategy};
use ppa_bench::stopwatch::Group;
use ppa_bench::RunCtx;
use ppa_faults::{CascadeProcess, FailureProcess};
use ppa_sim::{SimDuration, SimTime};
use ppa_workloads::Fig6Config;

fn main() {
    let ctx = RunCtx::serial(true);
    let cfg = Fig6Config {
        rate: 300,
        window: SimDuration::from_secs(10),
        ..Fig6Config::default()
    };
    let scenario = ppa_workloads::fig6_scenario(&cfg);
    // Racks of 5 workers; the failure cascades with p=0.9, decaying.
    let tree = scenario.worker_fault_domains(5);
    let process = CascadeProcess {
        level: 1,
        spread: 0.9,
        decay: 0.5,
        hop_delay: SimDuration::from_secs(2),
        fraction: 1.0,
        origin: None,
    };
    let trace =
        process.generate_seeded(&tree, SimTime::from_secs(40), SimDuration::from_secs(60), 7);
    let group = Group::new("corr_sweep").sample_size(10);
    for strategy in [
        Strategy::Active { sync_secs: 5 },
        Strategy::Checkpoint { interval_secs: 5 },
    ] {
        group.bench(&strategy.label(), || {
            let report = run_fig6(&ctx, &cfg, &strategy, &trace, 130);
            assert!(!report.recoveries.is_empty());
            report.events
        });
    }
}
