//! The Fig. 6 synthetic topology of the recovery-efficiency experiments
//! (§VI-A): one 16-task source operator feeding four synthetic operators
//! with parallelism 8/4/2/1, each task merging two upstream tasks. Every
//! synthetic operator maintains a sliding window (step 1 s, interval 10 s or
//! 30 s) over its raw input and has selectivity 0.5.

use crate::{dedicated_placement, Scenario};
use ppa_core::model::{OperatorSpec, Partitioning};
use ppa_engine::udf::WindowBuffer;
use ppa_engine::{BatchCtx, InputBatch, Query, QueryBuilder, SourceGen, Tuple, Udf};
use ppa_sim::SimDuration;

/// Parameters of the Fig. 6 scenario.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Per-source-task rate in tuples/s (the paper: 1000 or 2000).
    pub rate: usize,
    /// Window interval (the paper: 10 s or 30 s). Slide step = batch = 1 s.
    pub window: SimDuration,
    /// Selectivity of each synthetic operator (the paper: 0.5).
    pub selectivity: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            rate: 1000,
            window: SimDuration::from_secs(30),
            selectivity: 0.5,
            seed: 42,
        }
    }
}

/// A synthetic sliding-window operator: keeps the window's raw input as
/// state and emits a `selectivity` fraction of each batch.
#[derive(Clone)]
pub struct SyntheticOp {
    window_batches: u64,
    selectivity: f64,
    buf: WindowBuffer,
}

impl SyntheticOp {
    pub fn new(window_batches: u64, selectivity: f64) -> Self {
        SyntheticOp {
            window_batches,
            selectivity,
            buf: WindowBuffer::new(),
        }
    }
}

impl Udf for SyntheticOp {
    fn on_batch(&mut self, ctx: &BatchCtx, inputs: &[InputBatch<'_>], out: &mut Vec<Tuple>) {
        let mut all: Vec<Tuple> = Vec::new();
        for i in inputs {
            all.extend_from_slice(i.tuples);
        }
        // Deterministic selection of ~selectivity of the batch: every k-th
        // tuple by position, so primaries and replicas agree exactly.
        let keep_every = if self.selectivity > 0.0 {
            (1.0 / self.selectivity).round().max(1.0) as usize
        } else {
            usize::MAX
        };
        out.extend(
            all.iter()
                .enumerate()
                .filter(|(i, _)| i % keep_every == 0)
                .map(|(_, t)| t.clone()),
        );
        self.buf.push(ctx.batch, all, self.window_batches);
    }

    fn snapshot(&self) -> Box<dyn Udf> {
        Box::new(self.clone())
    }

    fn state_tuples(&self) -> usize {
        self.buf.len_tuples()
    }
}

/// A source emitting `rate` tuples per batch with uniformly random keys.
#[derive(Debug, Clone)]
struct UniformSource {
    per_batch: usize,
    seed: u64,
}

impl SourceGen for UniformSource {
    fn batch(&mut self, batch: u64) -> Vec<Tuple> {
        (0..self.per_batch)
            .map(|i| {
                let u = crate::zipf::uniform_hash(self.seed, batch, i as u64, 0);
                Tuple::key_only((u * 1_000_000.0) as u64)
            })
            .collect()
    }
}

/// Builds the Fig. 6 query.
pub fn fig6_query(cfg: &Fig6Config) -> Query {
    let window_batches = (cfg.window.as_micros() / 1_000_000).max(1);
    let sel = cfg.selectivity;
    let rate = cfg.rate;
    let seed = cfg.seed;

    let mut q = QueryBuilder::new();
    let src = q.add_source(
        OperatorSpec::source("source", 16, rate as f64),
        move |task| {
            Box::new(UniformSource {
                per_batch: rate,
                seed: seed ^ (task as u64) << 8,
            })
        },
    );
    let o1 = q.add_operator(OperatorSpec::map("O1", 8, sel), move |_| {
        Box::new(SyntheticOp::new(window_batches, sel))
    });
    let o2 = q.add_operator(OperatorSpec::map("O2", 4, sel), move |_| {
        Box::new(SyntheticOp::new(window_batches, sel))
    });
    let o3 = q.add_operator(OperatorSpec::map("O3", 2, sel), move |_| {
        Box::new(SyntheticOp::new(window_batches, sel))
    });
    let o4 = q.add_operator(OperatorSpec::map("O4", 1, sel), move |_| {
        Box::new(SyntheticOp::new(window_batches, sel))
    });
    q.connect(src, o1, Partitioning::Merge).unwrap();
    q.connect(o1, o2, Partitioning::Merge).unwrap();
    q.connect(o2, o3, Partitioning::Merge).unwrap();
    q.connect(o3, o4, Partitioning::Merge).unwrap();
    q.build().expect("fig6 topology is valid")
}

/// Builds the full Fig. 6 scenario: query + the paper's placement (sources
/// on 4 nodes, 15 synthetic tasks on 15 nodes, 15 standbys).
pub fn fig6_scenario(cfg: &Fig6Config) -> Scenario {
    let query = fig6_query(cfg);
    let graph = ppa_core::model::TaskGraph::new(query.topology().clone());
    let (placement, worker_kill_set) = dedicated_placement(&graph);
    Scenario {
        query,
        placement,
        worker_kill_set,
        placement_strategy: crate::DEDICATED.to_string(),
        policy: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_engine::{EngineConfig, FailureSpec, FtMode, Simulation};
    use ppa_sim::SimTime;

    #[test]
    fn fig6_topology_shape() {
        let q = fig6_query(&Fig6Config::default());
        let t = q.topology();
        assert_eq!(t.n_operators(), 5);
        assert_eq!(t.n_tasks(), 31);
        let paras: Vec<usize> = t.operators().iter().map(|o| o.parallelism).collect();
        assert_eq!(paras, vec![16, 8, 4, 2, 1]);
    }

    #[test]
    fn synthetic_op_halves_its_input() {
        let mut op = SyntheticOp::new(10, 0.5);
        let tuples: Vec<Tuple> = (0..100).map(Tuple::key_only).collect();
        let mut out = Vec::new();
        let ctx = BatchCtx {
            batch: 0,
            now: SimTime::ZERO,
            task_local: 0,
            parallelism: 1,
        };
        op.on_batch(
            &ctx,
            &[InputBatch {
                stream: 0,
                tuples: &tuples,
            }],
            &mut out,
        );
        assert_eq!(out.len(), 50);
        assert_eq!(op.state_tuples(), 100);
    }

    #[test]
    fn synthetic_state_tracks_window_and_rate() {
        let mut op = SyntheticOp::new(3, 0.5);
        let ctx = |b| BatchCtx {
            batch: b,
            now: SimTime::ZERO,
            task_local: 0,
            parallelism: 1,
        };
        for b in 0..10u64 {
            let tuples: Vec<Tuple> = (0..200).map(Tuple::key_only).collect();
            let mut out = Vec::new();
            op.on_batch(
                &ctx(b),
                &[InputBatch {
                    stream: 0,
                    tuples: &tuples,
                }],
                &mut out,
            );
        }
        assert_eq!(op.state_tuples(), 600, "window(3) × rate(200)");
    }

    #[test]
    fn fig6_runs_end_to_end() {
        let cfg = Fig6Config {
            rate: 200,
            window: SimDuration::from_secs(10),
            ..Default::default()
        };
        let s = fig6_scenario(&cfg);
        let report = Simulation::run(
            &s.query,
            s.placement.clone(),
            EngineConfig {
                mode: FtMode::checkpoint(31, SimDuration::from_secs(5)),
                ..EngineConfig::default()
            },
            vec![],
            SimDuration::from_secs(15),
        );
        assert!(!report.sink.is_empty());
        // Selectivity 0.5 through 4 operators: 16·200 / 16 = 200 per batch.
        let s0 = &report.sink[0];
        assert_eq!(s0.tuples.len(), 16 * 200 / 16);
    }

    #[test]
    fn fig6_correlated_failure_recovers() {
        let cfg = Fig6Config {
            rate: 200,
            window: SimDuration::from_secs(10),
            ..Default::default()
        };
        let s = fig6_scenario(&cfg);
        let report = Simulation::run(
            &s.query,
            s.placement.clone(),
            EngineConfig {
                mode: FtMode::checkpoint(31, SimDuration::from_secs(5)),
                ..EngineConfig::default()
            },
            vec![FailureSpec {
                at: SimTime::from_secs(22),
                nodes: s.worker_kill_set.clone(),
            }],
            SimDuration::from_secs(120),
        );
        assert_eq!(report.recoveries.len(), 15, "all synthetic tasks failed");
        for r in &report.recoveries {
            assert!(
                r.recovered_at.is_some(),
                "task {:?} never recovered",
                r.task
            );
        }
    }
}
