//! Q2 (§VI-B): traffic-incident detection in a community-based navigation
//! service. Two synthetic streams, exactly as the paper generates them:
//!
//! * **user-location stream** — 100 000 users over 1 000 road segments,
//!   Zipf(s = 0.5); each record carries (user, speed). When an incident is
//!   active on a segment its users slow down sharply.
//! * **incident stream** — one incident every 2 s; the incident probability
//!   of a segment is proportional to its user population; every user on the
//!   segment reports it.
//!
//! Topology (paper Fig. 11): `loc-src -> O1 (avg speed/segment)` and
//! `inc-src -> O2 (dedup reports)` joined by the correlated-input
//! `O3 (jam detection)`, aggregated by `O4` (sink). A jam is an incident on
//! a segment whose windowed average speed is below a threshold.
//!
//! Key alignment: segment `s` lives on location-source task `s mod L`, so
//! merge partitioning routes every segment to a unique O1/O3 task; the
//! incident generator mirrors the same mapping so the join sees both sides.

use crate::zipf::{uniform_hash, Zipf};
use crate::{dedicated_placement, Scenario};
use ppa_core::model::{OperatorSpec, Partitioning};
use ppa_engine::{BatchCtx, InputBatch, Query, QueryBuilder, SourceGen, Tuple, Udf, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Q2 parameters.
#[derive(Debug, Clone)]
pub struct NavigationConfig {
    /// Location-source parallelism (paper-scale: 8).
    pub loc_src_tasks: usize,
    /// O1 (speed aggregation) parallelism; must divide `loc_src_tasks`.
    pub o1_tasks: usize,
    /// O3 (join) parallelism; must divide `o1_tasks`. The incident source
    /// and O2 share this parallelism so the two join sides align.
    pub o3_tasks: usize,
    /// Location records per second (total across tasks; paper: 20 000).
    pub location_rate: usize,
    /// Road segments (paper: 1 000).
    pub n_segments: usize,
    /// Users (paper: 100 000) — only their Zipf distribution matters.
    pub n_users: usize,
    /// Zipf exponent of users over segments (paper: 0.5).
    pub zipf_s: f64,
    /// Batches between consecutive incidents (paper: one per 2 s).
    pub incident_every_batches: u64,
    /// How long an incident keeps a segment slow, in batches.
    pub incident_duration_batches: u64,
    /// Speed-averaging window at the join, in batches.
    pub speed_window_batches: u64,
    /// Jam threshold: a windowed average below this triggers a detection.
    pub jam_threshold: f64,
    pub seed: u64,
}

impl Default for NavigationConfig {
    fn default() -> Self {
        NavigationConfig {
            loc_src_tasks: 8,
            o1_tasks: 4,
            o3_tasks: 4,
            location_rate: 4_000,
            n_segments: 1_000,
            n_users: 100_000,
            zipf_s: 0.5,
            incident_every_batches: 2,
            incident_duration_batches: 12,
            speed_window_batches: 5,
            jam_threshold: 30.0,
            seed: 2016,
        }
    }
}

/// The deterministic incident schedule shared by both generators (and by
/// the accuracy oracle): incident `k` starts at batch
/// `k · incident_every_batches` on a Zipf-weighted segment.
#[derive(Debug, Clone)]
pub struct IncidentSchedule {
    zipf: Zipf,
    every: u64,
    duration: u64,
    seed: u64,
}

impl IncidentSchedule {
    pub fn new(cfg: &NavigationConfig) -> Self {
        IncidentSchedule {
            zipf: Zipf::new(cfg.n_segments, cfg.zipf_s),
            every: cfg.incident_every_batches,
            duration: cfg.incident_duration_batches,
            seed: cfg.seed ^ 0xD1CE,
        }
    }

    /// Segment of incident `k`.
    pub fn segment_of(&self, k: u64) -> usize {
        self.zipf.sample_u(uniform_hash(self.seed, k, 0, 0))
    }

    /// Incidents `(id, segment)` starting exactly at `batch`.
    pub fn starting_at(&self, batch: u64) -> Vec<(u64, usize)> {
        if !batch.is_multiple_of(self.every) {
            return Vec::new();
        }
        let k = batch / self.every;
        vec![(k, self.segment_of(k))]
    }

    /// Incidents `(id, segment)` active during `batch`.
    pub fn active_at(&self, batch: u64) -> Vec<(u64, usize)> {
        let first = batch.saturating_sub(self.duration.saturating_sub(1)) / self.every;
        let last = batch / self.every;
        (first..=last)
            .filter(|k| {
                let start = k * self.every;
                start <= batch && batch < start + self.duration
            })
            .map(|k| (k, self.segment_of(k)))
            .collect()
    }

    /// All incident ids that start within `[from, to)` batches.
    pub fn ids_in(&self, from: u64, to: u64) -> Vec<u64> {
        (from.div_ceil(self.every)..=to.saturating_sub(1) / self.every)
            .filter(|k| (from..to).contains(&(k * self.every)))
            .collect()
    }
}

/// Location-stream source task: emits (segment, (user, speed)) records for
/// the segments it owns (`segment mod loc_src_tasks == task`).
#[derive(Clone)]
struct LocationSource {
    task: usize,
    n_tasks: usize,
    per_batch: usize,
    zipf: Zipf,
    schedule: IncidentSchedule,
    seed: u64,
}

impl SourceGen for LocationSource {
    fn batch(&mut self, batch: u64) -> Vec<Tuple> {
        let slow: BTreeSet<usize> = self
            .schedule
            .active_at(batch)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        let mut out = Vec::with_capacity(self.per_batch);
        let mut i = 0u64;
        // Rejection-sample segments owned by this task; bounded retries keep
        // generation O(per_batch) in expectation.
        let mut emitted = 0;
        while emitted < self.per_batch {
            let u = uniform_hash(self.seed, self.task as u64, batch, i);
            i += 1;
            let seg = self.zipf.sample_u(u);
            if seg % self.n_tasks != self.task {
                if i > (self.per_batch as u64) * 64 {
                    break; // pathological config; keep determinism and move on
                }
                continue;
            }
            let user =
                (uniform_hash(self.seed ^ 0xA11CE, self.task as u64, batch, i) * 100_000.0) as i64;
            let noise = uniform_hash(self.seed ^ 0x5EED, seg as u64, batch, i) * 10.0;
            let speed = if slow.contains(&seg) {
                8.0 + noise
            } else {
                45.0 + noise
            };
            out.push(Tuple::new(seg as u64, Value::Pair(user, speed as i64)));
            emitted += 1;
        }
        out
    }
}

/// Incident-stream source task: every user on the incident segment reports;
/// task `i` only emits incidents whose segment joins at O3 task `i`.
#[derive(Clone)]
struct IncidentSource {
    task: usize,
    cfg_map: SegmentMap,
    schedule: IncidentSchedule,
    n_users: usize,
    zipf: Zipf,
}

impl SourceGen for IncidentSource {
    fn batch(&mut self, batch: u64) -> Vec<Tuple> {
        let mut out = Vec::new();
        for (id, seg) in self.schedule.starting_at(batch) {
            if self.cfg_map.o3_task_of(seg) != self.task {
                continue;
            }
            // Every user on the segment reports the incident (paper); we cap
            // the report volume to keep tuple counts reasonable.
            let users = (self.zipf.pmf(seg) * self.n_users as f64).ceil() as usize;
            let reports = users.clamp(1, 200);
            for r in 0..reports {
                let _ = r;
                out.push(Tuple::new(seg as u64, Value::Int(id as i64)));
            }
        }
        out
    }
}

/// Segment → task mappings implied by the merge-partitioned topology.
#[derive(Debug, Clone, Copy)]
struct SegmentMap {
    loc_src_tasks: usize,
    o1_tasks: usize,
    o3_tasks: usize,
}

impl SegmentMap {
    fn src_task_of(&self, seg: usize) -> usize {
        seg % self.loc_src_tasks
    }

    fn o1_task_of(&self, seg: usize) -> usize {
        self.src_task_of(seg) / (self.loc_src_tasks / self.o1_tasks)
    }

    fn o3_task_of(&self, seg: usize) -> usize {
        self.o1_task_of(seg) / (self.o1_tasks / self.o3_tasks)
    }
}

/// O1: average speed per segment per batch.
#[derive(Clone)]
struct AvgSpeed;

impl Udf for AvgSpeed {
    fn on_batch(&mut self, _ctx: &BatchCtx, inputs: &[InputBatch<'_>], out: &mut Vec<Tuple>) {
        let mut acc: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
        for input in inputs {
            for t in input.tuples {
                if let Some((_user, speed)) = t.value.as_pair() {
                    let e = acc.entry(t.key).or_insert((0.0, 0));
                    e.0 += speed as f64;
                    e.1 += 1;
                }
            }
        }
        out.extend(
            acc.into_iter()
                .map(|(seg, (sum, n))| Tuple::new(seg, Value::Float(sum / n as f64))),
        );
    }

    fn snapshot(&self) -> Box<dyn Udf> {
        Box::new(self.clone())
    }

    fn state_tuples(&self) -> usize {
        0
    }
}

/// O2: combine duplicate incident reports into distinct incident events.
#[derive(Clone)]
struct DedupIncidents {
    /// Recently forwarded incident ids (bounded dedup memory).
    seen: VecDeque<i64>,
}

impl DedupIncidents {
    fn new() -> Self {
        DedupIncidents {
            seen: VecDeque::new(),
        }
    }
}

impl Udf for DedupIncidents {
    fn on_batch(&mut self, _ctx: &BatchCtx, inputs: &[InputBatch<'_>], out: &mut Vec<Tuple>) {
        let mut batch_new: BTreeMap<i64, u64> = BTreeMap::new();
        for input in inputs {
            for t in input.tuples {
                if let Some(id) = t.value.as_int() {
                    if !self.seen.contains(&id) {
                        batch_new.entry(id).or_insert(t.key);
                    }
                }
            }
        }
        for (id, seg) in batch_new {
            out.push(Tuple::new(seg, Value::Int(id)));
            self.seen.push_back(id);
            if self.seen.len() > 64 {
                self.seen.pop_front();
            }
        }
    }

    fn snapshot(&self) -> Box<dyn Udf> {
        Box::new(self.clone())
    }

    fn state_tuples(&self) -> usize {
        self.seen.len()
    }
}

/// O3: the correlated-input join — match open incidents against windowed
/// average segment speeds; emit a jam event per (segment, incident) once.
#[derive(Clone)]
struct JamJoin {
    window_batches: u64,
    threshold: f64,
    /// Sliding window of per-batch segment speed averages.
    speeds: VecDeque<(u64, BTreeMap<u64, f64>)>,
    /// Open incidents: (segment, id) → expiry batch.
    open: BTreeMap<(u64, i64), u64>,
    /// Already emitted jams.
    emitted: BTreeSet<(u64, i64)>,
    incident_duration: u64,
}

impl JamJoin {
    fn new(window_batches: u64, threshold: f64, incident_duration: u64) -> Self {
        JamJoin {
            window_batches,
            threshold,
            speeds: Default::default(),
            open: Default::default(),
            emitted: Default::default(),
            incident_duration,
        }
    }

    fn windowed_avg(&self, seg: u64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (_, m) in &self.speeds {
            if let Some(v) = m.get(&seg) {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }
}

impl Udf for JamJoin {
    fn on_batch(&mut self, ctx: &BatchCtx, inputs: &[InputBatch<'_>], out: &mut Vec<Tuple>) {
        // Stream 0: speeds from O1; stream 1: incidents from O2.
        let mut batch_speeds: BTreeMap<u64, f64> = BTreeMap::new();
        for input in inputs {
            for t in input.tuples {
                match (input.stream, &t.value) {
                    (0, Value::Float(v)) => {
                        batch_speeds.insert(t.key, *v);
                    }
                    (1, Value::Int(id)) => {
                        self.open
                            .insert((t.key, *id), ctx.batch + self.incident_duration);
                    }
                    _ => {}
                }
            }
        }
        self.speeds.push_back((ctx.batch, batch_speeds));
        let min_keep = ctx
            .batch
            .saturating_sub(self.window_batches.saturating_sub(1));
        while self.speeds.front().is_some_and(|(b, _)| *b < min_keep) {
            self.speeds.pop_front();
        }
        // Expire incidents and drop their emitted markers.
        let expired: Vec<(u64, i64)> = self
            .open
            .iter()
            .filter(|(_, &exp)| exp <= ctx.batch)
            .map(|(k, _)| *k)
            .collect();
        for k in expired {
            self.open.remove(&k);
            self.emitted.remove(&k);
        }
        // Join: open incident × slow windowed speed.
        let mut jams = Vec::new();
        for &(seg, id) in self.open.keys() {
            if self.emitted.contains(&(seg, id)) {
                continue;
            }
            if let Some(avg) = self.windowed_avg(seg) {
                if avg < self.threshold {
                    jams.push((seg, id));
                }
            }
        }
        for (seg, id) in jams {
            self.emitted.insert((seg, id));
            out.push(Tuple::new(seg, Value::Int(id)));
        }
    }

    fn snapshot(&self) -> Box<dyn Udf> {
        Box::new(self.clone())
    }

    fn state_tuples(&self) -> usize {
        self.speeds.iter().map(|(_, m)| m.len()).sum::<usize>() + self.open.len()
    }
}

/// O4: the sink aggregate — forwards confirmed jam events.
#[derive(Clone)]
struct JamAggregate;

impl Udf for JamAggregate {
    fn on_batch(&mut self, _ctx: &BatchCtx, inputs: &[InputBatch<'_>], out: &mut Vec<Tuple>) {
        for input in inputs {
            out.extend(input.tuples.iter().cloned());
        }
    }

    fn snapshot(&self) -> Box<dyn Udf> {
        Box::new(self.clone())
    }

    fn state_tuples(&self) -> usize {
        0
    }
}

/// Builds the Q2 query.
pub fn q2_query(cfg: &NavigationConfig) -> Query {
    assert!(cfg.loc_src_tasks.is_multiple_of(cfg.o1_tasks));
    assert!(cfg.o1_tasks.is_multiple_of(cfg.o3_tasks));
    let map = SegmentMap {
        loc_src_tasks: cfg.loc_src_tasks,
        o1_tasks: cfg.o1_tasks,
        o3_tasks: cfg.o3_tasks,
    };
    let schedule = IncidentSchedule::new(cfg);
    let zipf = Zipf::new(cfg.n_segments, cfg.zipf_s);
    let per_task_rate = cfg.location_rate / cfg.loc_src_tasks;

    let mut q = QueryBuilder::new();
    let loc = {
        let (zipf, schedule) = (zipf.clone(), schedule.clone());
        let (n_tasks, seed) = (cfg.loc_src_tasks, cfg.seed);
        q.add_source(
            OperatorSpec::source("loc-src", cfg.loc_src_tasks, per_task_rate as f64),
            move |task| {
                Box::new(LocationSource {
                    task,
                    n_tasks,
                    per_batch: per_task_rate,
                    zipf: zipf.clone(),
                    schedule: schedule.clone(),
                    seed,
                })
            },
        )
    };
    let inc = {
        let (zipf, schedule) = (zipf.clone(), schedule.clone());
        let n_users = cfg.n_users;
        q.add_source(
            // Mean report volume per incident is modest; rate estimate 30/s.
            OperatorSpec::source("inc-src", cfg.o3_tasks, 30.0),
            move |task| {
                Box::new(IncidentSource {
                    task,
                    cfg_map: map,
                    schedule: schedule.clone(),
                    n_users,
                    zipf: zipf.clone(),
                })
            },
        )
    };
    let seg_sel = (cfg.n_segments as f64 / per_task_rate as f64).min(1.0);
    let o1 = q.add_operator(
        OperatorSpec::map("O1-avg-speed", cfg.o1_tasks, seg_sel),
        |_| Box::new(AvgSpeed),
    );
    let o2 = q.add_operator(OperatorSpec::map("O2-dedup", cfg.o3_tasks, 0.2), |_| {
        Box::new(DedupIncidents::new())
    });
    let (w, thr, dur) = (
        cfg.speed_window_batches,
        cfg.jam_threshold,
        cfg.incident_duration_batches,
    );
    let o3 = q.add_operator(
        OperatorSpec::join("O3-jam-join", cfg.o3_tasks, 0.5),
        move |_| Box::new(JamJoin::new(w, thr, dur)),
    );
    let o4 = q.add_operator(OperatorSpec::map("O4-aggregate", 1, 1.0), |_| {
        Box::new(JamAggregate)
    });
    q.connect(loc, o1, Partitioning::Merge).unwrap();
    if cfg.o1_tasks == cfg.o3_tasks {
        q.connect(o1, o3, Partitioning::OneToOne).unwrap();
    } else {
        q.connect(o1, o3, Partitioning::Merge).unwrap();
    }
    q.connect(inc, o2, Partitioning::OneToOne).unwrap();
    q.connect(o2, o3, Partitioning::OneToOne).unwrap();
    q.connect(o3, o4, Partitioning::Merge).unwrap();
    q.build().expect("q2 topology is valid")
}

/// Q2 scenario with the paper's placement style.
pub fn q2_scenario(cfg: &NavigationConfig) -> Scenario {
    let query = q2_query(cfg);
    let graph = ppa_core::model::TaskGraph::new(query.topology().clone());
    let (placement, worker_kill_set) = dedicated_placement(&graph);
    Scenario {
        query,
        placement,
        worker_kill_set,
        placement_strategy: crate::DEDICATED.to_string(),
        policy: None,
    }
}

/// Extracts the detected jam set `(segment, incident)` from sink tuples.
pub fn jam_set(tuples: &[Tuple]) -> Vec<(u64, i64)> {
    tuples
        .iter()
        .filter_map(|t| t.value.as_int().map(|id| (t.key, id)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_engine::{EngineConfig, FtMode, Simulation};
    use ppa_sim::SimDuration;

    fn small() -> NavigationConfig {
        NavigationConfig {
            loc_src_tasks: 4,
            o1_tasks: 2,
            o3_tasks: 2,
            location_rate: 1_000,
            n_segments: 100,
            incident_every_batches: 2,
            ..NavigationConfig::default()
        }
    }

    #[test]
    fn schedule_is_consistent() {
        let cfg = small();
        let s = IncidentSchedule::new(&cfg);
        // Active set contains exactly the incidents within their duration.
        let active = s.active_at(5);
        for (id, seg) in &active {
            let start = id * cfg.incident_every_batches;
            assert!(start <= 5 && 5 < start + cfg.incident_duration_batches);
            assert_eq!(*seg, s.segment_of(*id));
        }
        assert!(!s.starting_at(4).is_empty());
        assert!(
            s.starting_at(5).is_empty(),
            "incidents start on even batches only"
        );
        assert_eq!(s.ids_in(0, 10), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn segment_mapping_aligns_join_sides() {
        let cfg = small();
        let map = SegmentMap {
            loc_src_tasks: cfg.loc_src_tasks,
            o1_tasks: cfg.o1_tasks,
            o3_tasks: cfg.o3_tasks,
        };
        for seg in 0..cfg.n_segments {
            let o3 = map.o3_task_of(seg);
            assert!(o3 < cfg.o3_tasks);
            // O1 task of the segment must merge into the same O3 task.
            assert_eq!(map.o1_task_of(seg) / (cfg.o1_tasks / cfg.o3_tasks), o3);
        }
    }

    #[test]
    fn q2_detects_jams_end_to_end() {
        let s = q2_scenario(&small());
        let report = Simulation::run(
            &s.query,
            s.placement.clone(),
            EngineConfig {
                mode: FtMode::None,
                ..Default::default()
            },
            vec![],
            SimDuration::from_secs(30),
        );
        let detected: BTreeSet<(u64, i64)> = report
            .sink
            .iter()
            .flat_map(|sb| jam_set(&sb.tuples))
            .collect();
        assert!(
            detected.len() >= 5,
            "jams must be detected in a healthy run: {detected:?}"
        );
    }

    #[test]
    fn q2_detections_match_schedule() {
        let cfg = small();
        let s = q2_scenario(&cfg);
        let schedule = IncidentSchedule::new(&cfg);
        let report = Simulation::run(
            &s.query,
            s.placement.clone(),
            EngineConfig {
                mode: FtMode::None,
                ..Default::default()
            },
            vec![],
            SimDuration::from_secs(30),
        );
        for sb in &report.sink {
            for (seg, id) in jam_set(&sb.tuples) {
                assert_eq!(
                    seg as usize,
                    schedule.segment_of(id as u64),
                    "detected jam must match the schedule"
                );
            }
        }
    }

    #[test]
    fn jam_join_requires_both_streams() {
        use ppa_sim::SimTime;
        let mut udf = JamJoin::new(3, 30.0, 10);
        let ctx = |b| BatchCtx {
            batch: b,
            now: SimTime::ZERO,
            task_local: 0,
            parallelism: 1,
        };
        let mut out = Vec::new();
        // Incident without slow speed: no jam.
        let inc = vec![Tuple::new(7, Value::Int(1))];
        let fast = vec![Tuple::new(7, Value::Float(50.0))];
        udf.on_batch(
            &ctx(0),
            &[
                InputBatch {
                    stream: 0,
                    tuples: &fast,
                },
                InputBatch {
                    stream: 1,
                    tuples: &inc,
                },
            ],
            &mut out,
        );
        assert!(out.is_empty());
        // Slow speeds arrive: jam fires exactly once.
        let slow = vec![Tuple::new(7, Value::Float(10.0))];
        for b in 1..4 {
            udf.on_batch(
                &ctx(b),
                &[
                    InputBatch {
                        stream: 0,
                        tuples: &slow,
                    },
                    InputBatch {
                        stream: 1,
                        tuples: &[],
                    },
                ],
                &mut out,
            );
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], Tuple::new(7, Value::Int(1)));
    }

    #[test]
    fn dedup_combines_reports() {
        use ppa_sim::SimTime;
        let mut udf = DedupIncidents::new();
        let ctx = BatchCtx {
            batch: 0,
            now: SimTime::ZERO,
            task_local: 0,
            parallelism: 1,
        };
        let reports: Vec<Tuple> = (0..50).map(|_| Tuple::new(3, Value::Int(9))).collect();
        let mut out = Vec::new();
        udf.on_batch(
            &ctx,
            &[InputBatch {
                stream: 0,
                tuples: &reports,
            }],
            &mut out,
        );
        assert_eq!(
            out.len(),
            1,
            "50 reports of one incident collapse to one event"
        );
    }
}
