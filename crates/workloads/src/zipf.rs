//! A small deterministic Zipf sampler (rand's distribution crates are not in
//! the dependency budget; the CDF-table approach is simple and exact).

/// Zipf distribution over `{0, 1, …, n-1}` with exponent `s`: item `i` has
/// probability proportional to `1/(i+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0 && s.is_finite());
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Maps a uniform sample `u ∈ [0,1)` to an item.
    pub fn sample_u(&self, u: f64) -> usize {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i,
        }
    }

    /// Probability of item `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// A tiny deterministic hash-to-uniform helper: maps `(seed, a, b, c)` to a
/// uniform f64 in `[0, 1)`. All workload generators derive their randomness
/// this way so a batch's content is a pure function of its coordinates
/// (required by [`ppa_engine::SourceGen`]'s determinism contract).
pub fn uniform_hash(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let mut z = seed
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ c.wrapping_mul(0x1656_67B1_9E37_79F9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.5);
        let sum: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn head_is_heavier_than_tail() {
        let z = Zipf::new(1000, 0.5);
        assert!(z.pmf(0) > z.pmf(999) * 10.0);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(50, 0.8);
        let n = 200_000;
        let mut counts = vec![0usize; 50];
        for k in 0..n {
            let u = uniform_hash(7, k as u64, 0, 0);
            counts[z.sample_u(u)] += 1;
        }
        for i in [0usize, 1, 10, 49] {
            let got = counts[i] as f64 / n as f64;
            let want = z.pmf(i);
            assert!(
                (got - want).abs() < 0.01 + want * 0.1,
                "item {i}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn sample_u_boundaries() {
        let z = Zipf::new(5, 1.0);
        assert_eq!(z.sample_u(0.0), 0);
        assert!(z.sample_u(0.999_999) < 5);
    }

    #[test]
    fn uniform_hash_is_uniform_and_deterministic() {
        assert_eq!(uniform_hash(1, 2, 3, 4), uniform_hash(1, 2, 3, 4));
        let n = 100_000;
        let mean: f64 = (0..n).map(|i| uniform_hash(9, i, 1, 2)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for v in (0..1000).map(|i| uniform_hash(9, i, 1, 2)) {
            assert!((0.0..1.0).contains(&v));
        }
    }
}
