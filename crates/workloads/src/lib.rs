//! # ppa-workloads — the paper's evaluation workloads
//!
//! * [`synthetic`] — the Fig. 6 topology used in the recovery-efficiency
//!   experiments (§VI-A): 16 source tasks on 4 nodes feeding 4 synthetic
//!   sliding-window operators (8/4/2/1 tasks) on 15 nodes, with 15 standby
//!   nodes.
//! * [`worldcup`] — Q1 (§VI-B): a hierarchical top-100 aggregation over a
//!   WorldCup'98-style access log. The original trace is not redistributable,
//!   so a Zipf-popularity synthetic log generator stands in (see README.md
//!   §4 — only the (server, object) shape matters to the query).
//! * [`navigation`] — Q2 (§VI-B): traffic-incident detection over a
//!   community-based navigation feed: a user-location stream joined with a
//!   user-reported incident stream (both synthetic, as in the paper).
//! * [`accuracy`] — the paper's query-accuracy functions
//!   (`|ST ∩ SA| / |SA|`) comparing tentative runs against golden runs.

pub mod accuracy;
pub mod navigation;
pub mod synthetic;
pub mod worldcup;
pub mod zipf;

pub use accuracy::{
    batch_fidelity, floored_outage_windows, incident_accuracy, outage_fidelity, outage_windows,
    sink_set_accuracy, topk_accuracy, OutageWindow,
};
pub use navigation::{q2_scenario, NavigationConfig};
pub use synthetic::{fig6_scenario, Fig6Config};
pub use worldcup::{q1_scenario, Q1Config};

use ppa_core::model::TaskGraph;
use ppa_engine::{Cluster, ControlPolicy, Placement, PlacementError, PlacementStrategy, Query};

/// Factory producing a fresh control policy per run. Policies are
/// stateful (`&mut` hooks), so a scenario carries a factory rather than
/// an instance — each simulated run drives its own copy, which keeps
/// parallel harness runs independent and deterministic.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn ControlPolicy> + Send + Sync>;

/// A ready-to-run workload: query + placement + the worker nodes whose
/// simultaneous death is the paper's correlated failure.
pub struct Scenario {
    pub query: Query,
    pub placement: Placement,
    /// Nodes hosting the non-source tasks (the correlated-failure kill set;
    /// source nodes survive, as in §VI-A).
    pub worker_kill_set: Vec<usize>,
    /// Name of the placement strategy that produced `placement`
    /// (`"Dedicated"` for the paper's hand-built layout).
    pub placement_strategy: String,
    /// Optional control policy driving online adaptation when the
    /// scenario runs through `Simulation::drive`. `None` means the
    /// static (never-acting) policy — byte-identical to the legacy run
    /// paths.
    pub policy: Option<PolicyFactory>,
}

impl Scenario {
    /// Attaches a control-policy factory; each run gets a fresh instance.
    pub fn with_policy(
        mut self,
        factory: impl Fn() -> Box<dyn ControlPolicy> + Send + Sync + 'static,
    ) -> Self {
        self.policy = Some(Box::new(factory));
        self
    }

    /// Instantiates the scenario's policy (the static no-op when none is
    /// attached).
    pub fn make_policy(&self) -> Box<dyn ControlPolicy> {
        match &self.policy {
            Some(factory) => factory(),
            None => Box::new(ppa_engine::StaticPolicy),
        }
    }
    /// Re-places an existing scenario's query with a [`PlacementStrategy`]
    /// over a [`Cluster`]: the placement (and its attached fault-domain
    /// mapping) is rebuilt and the strategy's name is recorded for run
    /// labels. The kill set keeps its documented §VI-A contract — the
    /// nodes hosting non-source primaries — even though a generic strategy
    /// mixes sources onto shared workers (a node hosting both a source and
    /// a synthetic task is still in the set; a pure source node is not).
    pub fn placed_with(
        mut self,
        strategy: &dyn PlacementStrategy,
        cluster: &Cluster,
    ) -> Result<Self, PlacementError> {
        let graph = self.graph();
        let placement = strategy.place(&graph, cluster)?;
        self.worker_kill_set = placement.nodes_of(
            (0..graph.n_tasks())
                .map(ppa_core::model::TaskIndex)
                .filter(|&t| !graph.is_source_task(t)),
        );
        self.placement = placement;
        self.placement_strategy = strategy.name().to_string();
        Ok(self)
    }

    /// The task graph of the scenario's query.
    pub fn graph(&self) -> TaskGraph {
        TaskGraph::new(self.query.topology().clone())
    }

    /// A fault-domain hierarchy over the scenario's worker nodes: the kill
    /// set grouped into consecutive racks of `rack_size`. This is the
    /// cluster description the `ppa-faults` generators (and the
    /// `corr_sweep` experiment) draw bursts and cascades from; source and
    /// standby nodes are left outside the tree, mirroring §VI-A where they
    /// survive the correlated failure.
    pub fn worker_fault_domains(&self, rack_size: usize) -> ppa_faults::FaultDomainTree {
        ppa_faults::FaultDomainTree::racks(&self.worker_kill_set, rack_size)
    }
}

/// Places every source task on shared source nodes (4 tasks per node) and
/// every other task on its own worker node, with one standby node per task,
/// mirroring the paper's layout.
pub(crate) fn dedicated_placement(graph: &TaskGraph) -> (Placement, Vec<usize>) {
    let n = graph.n_tasks();
    let mut primary = vec![0usize; n];
    let mut next_source_slot = 0usize;
    let mut worker_nodes: Vec<usize> = Vec::new();

    let n_source_tasks = graph.source_tasks().len();
    let n_source_nodes = n_source_tasks.div_ceil(4).max(1);
    let mut next_worker = n_source_nodes;
    for (t, slot) in primary.iter_mut().enumerate() {
        if graph.is_source_task(ppa_core::model::TaskIndex(t)) {
            *slot = next_source_slot / 4;
            next_source_slot += 1;
        } else {
            *slot = next_worker;
            worker_nodes.push(next_worker);
            next_worker += 1;
        }
    }
    let n_workers = next_worker;
    let n_standby = n.max(1);
    let standby: Vec<usize> = (0..n).map(|t| n_workers + t % n_standby).collect();
    (
        Placement::explicit(primary, standby, n_workers, n_standby)
            .expect("dedicated placement is structurally valid"),
        worker_nodes,
    )
}

/// Strategy label of the paper's hand-built source-isolating layout.
pub(crate) const DEDICATED: &str = "Dedicated";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_fault_domains_cover_exactly_the_kill_set() {
        let s = synthetic::fig6_scenario(&Fig6Config::default());
        let tree = s.worker_fault_domains(4);
        assert_eq!(
            tree.all_nodes(),
            s.worker_kill_set,
            "racks partition the kill set"
        );
        assert_eq!(
            tree.domains_at_level(1).len(),
            4,
            "15 workers in racks of 4"
        );
        // Source nodes are outside the hierarchy.
        for t in s.graph().source_tasks() {
            assert_eq!(tree.domain_of(s.placement.primary[t.0]), None);
        }
    }

    #[test]
    fn placed_with_rebuilds_placement_and_keeps_kill_set_contract() {
        use ppa_engine::{Cluster, Packed};
        let s = synthetic::fig6_scenario(&Fig6Config::default())
            .placed_with(&Packed, &Cluster::flat(12, 12))
            .unwrap();
        assert_eq!(s.placement_strategy, "Packed");
        let g = s.graph();
        // Packed puts the 16 sources (tasks 0..16, 3 per node) on nodes
        // 0..5 and nothing else on 0..4; the kill set must keep its §VI-A
        // contract: nodes hosting non-source primaries only.
        for node in 0..4 {
            assert!(
                !s.worker_kill_set.contains(&node),
                "pure source node {node} in the kill set"
            );
        }
        for &node in &s.worker_kill_set {
            assert!(
                s.placement
                    .tasks_on(node)
                    .iter()
                    .any(|&t| !g.is_source_task(t)),
                "kill-set node {node} hosts no non-source primary"
            );
        }
        assert!(!s.worker_kill_set.is_empty());
    }

    #[test]
    fn dedicated_placement_isolates_sources() {
        let s = synthetic::fig6_scenario(&Fig6Config::default());
        let g = s.graph();
        // 16 source tasks on 4 nodes.
        for t in g.source_tasks() {
            assert!(s.placement.primary[t.0] < 4);
        }
        // 15 synthetic tasks on their own nodes 4..19.
        let mut seen = std::collections::BTreeSet::new();
        for t in 0..g.n_tasks() {
            if !g.is_source_task(ppa_core::model::TaskIndex(t)) {
                assert!(s.placement.primary[t] >= 4);
                assert!(
                    seen.insert(s.placement.primary[t]),
                    "one synthetic task per node"
                );
            }
        }
        assert_eq!(s.worker_kill_set.len(), 15);
    }
}
