//! The paper's query-accuracy functions (§VI-B): compare the tentative
//! outputs of a failure run (`ST`) against the accurate outputs of a golden
//! run (`SA`): `accuracy = |ST ∩ SA| / |SA|`.
//!
//! Comparisons are windowed: only sink batches whose batch id falls in
//! `[from_batch, to_batch)` participate — the harness passes the failure
//! detection batch and the end of the measurement window.

use crate::navigation::jam_set;
use crate::worldcup::topk_set;
use ppa_engine::RunReport;
use std::collections::{BTreeMap, BTreeSet};

/// Generic set-overlap accuracy between two runs' sink outputs, with a
/// per-batch extractor mapping sink tuples to comparable items.
pub fn sink_set_accuracy<T: Ord + Clone>(
    golden: &RunReport,
    tentative: &RunReport,
    from_batch: u64,
    to_batch: u64,
    extract: impl Fn(&ppa_engine::SinkBatch) -> Vec<T>,
) -> f64 {
    let collect = |rep: &RunReport| -> BTreeSet<T> {
        rep.sink
            .iter()
            .filter(|s| (from_batch..to_batch).contains(&s.batch))
            .flat_map(|s| extract(s).into_iter())
            .collect()
    };
    let sa = collect(golden);
    let st = collect(tentative);
    if sa.is_empty() {
        // No accurate output in the window: nothing to lose.
        return 1.0;
    }
    st.intersection(&sa).count() as f64 / sa.len() as f64
}

/// Q1 accuracy: mean per-batch overlap of the tentative top-k set with the
/// accurate top-k set. Batches the tentative run never emitted count as 0
/// (the sink was down and produced nothing).
pub fn topk_accuracy(
    golden: &RunReport,
    tentative: &RunReport,
    from_batch: u64,
    to_batch: u64,
) -> f64 {
    let mut per_batch = Vec::new();
    for b in from_batch..to_batch {
        let sa: BTreeSet<u64> = golden
            .sink_batches(b)
            .flat_map(|s| topk_set(&s.tuples))
            .collect();
        if sa.is_empty() {
            continue;
        }
        let st: BTreeSet<u64> = tentative
            .sink_batches(b)
            .flat_map(|s| topk_set(&s.tuples))
            .collect();
        per_batch.push(st.intersection(&sa).count() as f64 / sa.len() as f64);
    }
    if per_batch.is_empty() {
        return 1.0;
    }
    per_batch.iter().sum::<f64>() / per_batch.len() as f64
}

/// Recovered-output fidelity of a failure run against a golden run over a
/// batch window: per batch the golden run emitted, the fraction of its sink
/// tuple volume the failure run delivered *on time* (capped at 1), averaged
/// over the window.
///
/// "On time" means within `lateness` of the golden run's emission instant
/// for the same (batch, sink task) — recovery replay eventually backfills
/// *every* batch, so without a deadline any run that recovers at all
/// scores 1.0. The deadline makes the metric measure what the paper's
/// tentative outputs are for: usable (possibly degraded) results when
/// they were due, not a perfect transcript delivered after the outage.
/// Deadlines are per sink task, so a parallel sink whose partitions
/// legitimately emit at different instants scores 1.0 against itself.
///
/// Duplicate on-time sink records from one sink task — a restored task
/// reprocessing its backlog re-emits — are collapsed by keeping that
/// task's fullest record (capped at the task's golden volume), so replay
/// never inflates fidelity; distinct sink tasks of a parallel sink
/// operator are summed, so a whole sink task's missing output is a real
/// loss, not shadowed by its busiest peer. A batch with no on-time record
/// counts as 0: the sink was down (or hopelessly behind) and its output
/// was simply missing when needed.
pub fn batch_fidelity(
    golden: &RunReport,
    run: &RunReport,
    from_batch: u64,
    to_batch: u64,
    lateness: ppa_sim::SimDuration,
) -> f64 {
    let mut per_batch = Vec::new();
    for b in from_batch..to_batch {
        // Per sink task: golden volume (fullest record) and its deadline.
        let mut golden_tasks: BTreeMap<_, (usize, ppa_sim::SimTime)> = BTreeMap::new();
        for s in golden.sink_batches(b) {
            let entry = golden_tasks
                .entry(s.task)
                .or_insert((0, ppa_sim::SimTime::MAX));
            entry.0 = entry.0.max(s.tuples.len());
            entry.1 = entry.1.min(s.at);
        }
        let golden_tuples: usize = golden_tasks.values().map(|&(v, _)| v).sum();
        if golden_tuples == 0 {
            continue;
        }
        let run_tuples: usize = golden_tasks
            .iter()
            .map(|(&task, &(golden_vol, at))| {
                let due = at + lateness;
                run.sink_batches(b)
                    .filter(|s| s.task == task && s.at <= due)
                    .map(|s| s.tuples.len().min(golden_vol))
                    .max()
                    .unwrap_or(0)
            })
            .sum();
        per_batch.push(run_tuples as f64 / golden_tuples as f64);
    }
    if per_batch.is_empty() {
        // No accurate output in the window: nothing to lose.
        return 1.0;
    }
    per_batch.iter().sum::<f64>() / per_batch.len() as f64
}

/// Batch windows attributing output to outages: every distinct outage
/// onset across the run's per-task outage histories (the batch in flight
/// when that failure hit) opens a window, closed by the next onset; the
/// last window closes at `horizon`. `batch_interval` converts failure
/// instants to batch ids.
///
/// Before outage histories existed, a run had one undifferentiated
/// "post-failure" window, so output lost to a *second* outage (an
/// activated replica dying) was silently averaged into the first
/// outage's score. Windowing by onset lets [`batch_fidelity`] charge
/// each loss to the outage that caused it.
pub fn outage_windows(
    run: &RunReport,
    batch_interval: ppa_sim::SimDuration,
    horizon: u64,
) -> Vec<(u64, u64)> {
    let per_batch = batch_interval.as_micros().max(1);
    let onsets: BTreeSet<u64> = run
        .outages
        .iter()
        .flat_map(|o| o.records.iter())
        .map(|rec| rec.failed_at.as_micros() / per_batch)
        .filter(|&b| b < horizon)
        .collect();
    let onsets: Vec<u64> = onsets.into_iter().collect();
    onsets
        .iter()
        .enumerate()
        .map(|(i, &from)| (from, onsets.get(i + 1).copied().unwrap_or(horizon)))
        .collect()
}

/// An outage window annotated with the lossy-recovery fidelity floor the
/// engine recorded for it: the minimum `fidelity_floor` across the
/// outage records whose onset opened this window (`None` when every one
/// of them recovered exactly). Produced by [`floored_outage_windows`];
/// the floor is the engine's *guarantee*, the measured
/// [`outage_fidelity`] is the *realization* — chaos checking asserts
/// realization ≥ guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageWindow {
    /// First batch id the window covers (the onset batch).
    pub from: u64,
    /// One past the last batch id (the next onset, or the horizon).
    pub to: u64,
    /// Permille fidelity floor of the lossy recoveries that opened this
    /// window, minimized across records sharing the onset.
    pub fidelity_floor: Option<u16>,
}

/// [`outage_windows`] with each window carrying the fidelity floor of
/// the outage records whose onset opened it (approximate recoveries
/// record one; exact recoveries leave `None`). Windows and bounds are
/// identical to [`outage_windows`] — this is an annotation, not a
/// different split.
pub fn floored_outage_windows(
    run: &RunReport,
    batch_interval: ppa_sim::SimDuration,
    horizon: u64,
) -> Vec<OutageWindow> {
    let per_batch = batch_interval.as_micros().max(1);
    outage_windows(run, batch_interval, horizon)
        .into_iter()
        .map(|(from, to)| {
            let fidelity_floor = run
                .outages
                .iter()
                .flat_map(|o| o.records.iter())
                .filter(|rec| rec.failed_at.as_micros() / per_batch == from)
                .filter_map(|rec| rec.fidelity_floor)
                .min();
            OutageWindow {
                from,
                to,
                fidelity_floor,
            }
        })
        .collect()
}

/// [`batch_fidelity`] over each window of `windows` — one score per
/// outage window, so late output is attributed to the outage it belongs
/// to instead of diluting its neighbours.
pub fn outage_fidelity(
    golden: &RunReport,
    run: &RunReport,
    windows: &[(u64, u64)],
    lateness: ppa_sim::SimDuration,
) -> Vec<f64> {
    windows
        .iter()
        .map(|&(from, to)| batch_fidelity(golden, run, from, to, lateness))
        .collect()
}

/// Q2 accuracy: overlap of detected incident sets `(segment, incident)` in
/// the window — `|IT ∩ IA| / |IA|`.
pub fn incident_accuracy(
    golden: &RunReport,
    tentative: &RunReport,
    from_batch: u64,
    to_batch: u64,
) -> f64 {
    sink_set_accuracy(golden, tentative, from_batch, to_batch, |s| {
        jam_set(&s.tuples)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_core::model::TaskIndex;
    use ppa_engine::{SinkBatch, Tuple, Value};
    use ppa_sim::SimTime;
    use std::sync::Arc;

    fn report_with(batches: Vec<(u64, Vec<Tuple>)>) -> RunReport {
        let mut rep = RunReport::default();
        for (batch, tuples) in batches {
            rep.sink.push(SinkBatch {
                task: TaskIndex(0),
                batch,
                at: SimTime::from_secs(batch),
                tentative: false,
                tuples,
            });
        }
        rep
    }

    fn digest(keys: &[u64]) -> Vec<Tuple> {
        let counts: Vec<(u64, i64)> = keys.iter().map(|&k| (k, 1)).collect();
        vec![Tuple::new(0, Value::Counts(Arc::from(counts)))]
    }

    #[test]
    fn topk_accuracy_full_overlap_is_one() {
        let g = report_with(vec![(5, digest(&[1, 2, 3, 4]))]);
        let t = report_with(vec![(5, digest(&[1, 2, 3, 4]))]);
        assert!((topk_accuracy(&g, &t, 5, 6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn topk_accuracy_half_overlap() {
        let g = report_with(vec![(5, digest(&[1, 2, 3, 4]))]);
        let t = report_with(vec![(5, digest(&[1, 2, 9, 8]))]);
        assert!((topk_accuracy(&g, &t, 5, 6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn topk_missing_batches_count_zero() {
        let g = report_with(vec![(5, digest(&[1, 2])), (6, digest(&[1, 2]))]);
        let t = report_with(vec![(5, digest(&[1, 2]))]); // batch 6 missing
        assert!((topk_accuracy(&g, &t, 5, 7) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn incident_accuracy_uses_pair_sets() {
        let jam = |seg: u64, id: i64| Tuple::new(seg, Value::Int(id));
        let g = report_with(vec![(3, vec![jam(1, 10), jam(2, 11)])]);
        let t = report_with(vec![(3, vec![jam(1, 10)])]);
        assert!((incident_accuracy(&g, &t, 0, 10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_golden_window_is_perfect() {
        let g = report_with(vec![]);
        let t = report_with(vec![]);
        assert_eq!(incident_accuracy(&g, &t, 0, 10), 1.0);
        assert_eq!(topk_accuracy(&g, &t, 0, 10), 1.0);
    }

    #[test]
    fn batch_fidelity_averages_volume_and_collapses_duplicates() {
        let slack = ppa_sim::SimDuration::from_secs(5);
        let key = Tuple::key_only;
        let g = report_with(vec![
            (3, vec![key(1), key(2), key(3), key(4)]),
            (4, vec![key(1), key(2)]),
        ]);
        // Batch 3 delivered half; batch 4 missing; batch 3 also re-emitted
        // by a replaying task with fewer tuples — the fullest record wins.
        let t = report_with(vec![
            (3, vec![key(1), key(9)]),
            (3, vec![key(1)]), // duplicate, smaller: ignored
        ]);
        assert!((batch_fidelity(&g, &t, 0, 10, slack) - 0.25).abs() < 1e-12);
        // Identical runs are perfect; empty windows are perfect.
        assert_eq!(batch_fidelity(&g, &g, 0, 10, slack), 1.0);
        assert_eq!(batch_fidelity(&g, &t, 100, 110, slack), 1.0);
        // Over-delivery (replayed duplicates) is capped at 1 per batch.
        let over = report_with(vec![
            (3, vec![key(1); 8]),
            (4, vec![key(1), key(2), key(3)]),
        ]);
        assert_eq!(batch_fidelity(&g, &over, 0, 10, slack), 1.0);
    }

    #[test]
    fn batch_fidelity_sums_parallel_sink_tasks() {
        let key = Tuple::key_only;
        let record = |task: usize, tuples: Vec<Tuple>| SinkBatch {
            task: TaskIndex(task),
            batch: 3,
            at: SimTime::from_secs(3),
            tentative: false,
            tuples,
        };
        // A parallelism-2 sink: golden volume is 60 + 40.
        let mut g = RunReport::default();
        g.sink.push(record(5, vec![key(1); 60]));
        g.sink.push(record(6, vec![key(2); 40]));
        // The failure run delivers only task 5's share (plus a smaller
        // re-emission duplicate of it): task 6's 40 tuples are missing and
        // must count as lost, not be shadowed by task 5's maximum.
        let mut t = RunReport::default();
        t.sink.push(record(5, vec![key(1); 60]));
        t.sink.push(record(5, vec![key(1); 20]));
        let slack = ppa_sim::SimDuration::from_secs(5);
        assert!((batch_fidelity(&g, &t, 0, 10, slack) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn batch_fidelity_deadlines_are_per_sink_task() {
        let key = Tuple::key_only;
        let record = |task: usize, at_secs: u64, tuples: Vec<Tuple>| SinkBatch {
            task: TaskIndex(task),
            batch: 3,
            at: SimTime::from_secs(at_secs),
            tentative: false,
            tuples,
        };
        // A parallel sink whose heavier partition legitimately emits 7 s
        // after the lighter one — far more than the 5 s lateness budget.
        let mut g = RunReport::default();
        g.sink.push(record(5, 3, vec![key(1); 10]));
        g.sink.push(record(6, 10, vec![key(2); 30]));
        let slack = ppa_sim::SimDuration::from_secs(5);
        // Self-fidelity must be perfect: each task is judged against its
        // own golden deadline, not the batch's earliest record.
        assert_eq!(batch_fidelity(&g, &g, 0, 10, slack), 1.0);
        // A run where the heavy partition slips past ITS deadline loses
        // exactly that partition's share.
        let mut t = RunReport::default();
        t.sink.push(record(5, 3, vec![key(1); 10]));
        t.sink.push(record(6, 16, vec![key(2); 30]));
        assert!((batch_fidelity(&g, &t, 0, 10, slack) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn batch_fidelity_ignores_late_backfill() {
        let key = Tuple::key_only;
        // Golden emits batch 3 at t = 3 s (report_with's convention).
        let g = report_with(vec![(3, vec![key(1), key(2)])]);
        // The failure run backfills batch 3 at t = 30 s — a recovery
        // replay, far past any usable deadline.
        let mut late = RunReport::default();
        late.sink.push(SinkBatch {
            task: TaskIndex(0),
            batch: 3,
            at: SimTime::from_secs(30),
            tentative: false,
            tuples: vec![key(1), key(2)],
        });
        let slack = ppa_sim::SimDuration::from_secs(5);
        assert_eq!(batch_fidelity(&g, &late, 0, 10, slack), 0.0);
        // A generous deadline admits it again.
        let generous = ppa_sim::SimDuration::from_secs(60);
        assert_eq!(batch_fidelity(&g, &late, 0, 10, generous), 1.0);
    }

    #[test]
    fn outage_windows_split_at_each_onset() {
        use ppa_engine::{OutageRecord, TaskOutages};
        let rec = |failed: u64| OutageRecord {
            via_replica: false,
            failed_at: SimTime::from_secs(failed),
            detected_at: SimTime::from_secs(failed + 5),
            recovered_at: None,
            fidelity_floor: None,
        };
        let mut run = RunReport::default();
        run.outages.push(TaskOutages {
            task: TaskIndex(1),
            records: vec![rec(40), rec(70)],
        });
        run.outages.push(TaskOutages {
            task: TaskIndex(2),
            records: vec![rec(40)], // same wave: onset deduplicated
        });
        let b = ppa_sim::SimDuration::from_secs(1);
        assert_eq!(outage_windows(&run, b, 100), vec![(40, 70), (70, 100)]);
        // Onsets at or past the horizon are dropped.
        assert_eq!(outage_windows(&run, b, 60), vec![(40, 60)]);
        // No outages, no windows.
        assert!(outage_windows(&RunReport::default(), b, 100).is_empty());
    }

    #[test]
    fn floored_windows_annotate_without_resplitting() {
        use ppa_engine::{OutageRecord, TaskOutages};
        let rec = |failed: u64, floor: Option<u16>| OutageRecord {
            via_replica: false,
            failed_at: SimTime::from_secs(failed),
            detected_at: SimTime::from_secs(failed + 5),
            recovered_at: None,
            fidelity_floor: floor,
        };
        let mut run = RunReport::default();
        run.outages.push(TaskOutages {
            task: TaskIndex(1),
            records: vec![rec(40, Some(700)), rec(70, None)],
        });
        // Same onset, lossier recovery: the window keeps the minimum.
        run.outages.push(TaskOutages {
            task: TaskIndex(2),
            records: vec![rec(40, Some(400))],
        });
        let b = ppa_sim::SimDuration::from_secs(1);
        let floored = floored_outage_windows(&run, b, 100);
        assert_eq!(
            floored.iter().map(|w| (w.from, w.to)).collect::<Vec<_>>(),
            outage_windows(&run, b, 100),
            "annotation must not change the split"
        );
        assert_eq!(floored[0].fidelity_floor, Some(400));
        assert_eq!(floored[1].fidelity_floor, None, "exact recovery: no floor");
    }

    #[test]
    fn outage_fidelity_charges_each_window_separately() {
        let key = Tuple::key_only;
        let g = report_with((4..8).map(|b| (b, vec![key(1), key(2)])).collect());
        // Batches 4-5 delivered on time; 6-7 lost to a second outage.
        let t = report_with(vec![(4, vec![key(1), key(2)]), (5, vec![key(1), key(2)])]);
        let slack = ppa_sim::SimDuration::from_secs(5);
        assert_eq!(
            outage_fidelity(&g, &t, &[(4, 6), (6, 8)], slack),
            vec![1.0, 0.0],
            "the second outage's loss stays in its own window"
        );
        // One merged window blurs the same loss into an average.
        assert!((batch_fidelity(&g, &t, 4, 8, slack) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_bounds_are_respected() {
        let jam = |seg: u64, id: i64| Tuple::new(seg, Value::Int(id));
        let g = report_with(vec![(3, vec![jam(1, 10)]), (20, vec![jam(2, 11)])]);
        let t = report_with(vec![(3, vec![jam(1, 10)])]);
        // Batch 20 is outside [0, 10): full accuracy.
        assert_eq!(incident_accuracy(&g, &t, 0, 10), 1.0);
        // Including it halves nothing — tentative still finds jam(1,10) of
        // the two golden jams.
        assert!((incident_accuracy(&g, &t, 0, 30) - 0.5).abs() < 1e-12);
    }
}
