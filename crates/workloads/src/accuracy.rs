//! The paper's query-accuracy functions (§VI-B): compare the tentative
//! outputs of a failure run (`ST`) against the accurate outputs of a golden
//! run (`SA`): `accuracy = |ST ∩ SA| / |SA|`.
//!
//! Comparisons are windowed: only sink batches whose batch id falls in
//! `[from_batch, to_batch)` participate — the harness passes the failure
//! detection batch and the end of the measurement window.

use crate::navigation::jam_set;
use crate::worldcup::topk_set;
use ppa_engine::RunReport;
use std::collections::BTreeSet;

/// Generic set-overlap accuracy between two runs' sink outputs, with a
/// per-batch extractor mapping sink tuples to comparable items.
pub fn sink_set_accuracy<T: Ord + Clone>(
    golden: &RunReport,
    tentative: &RunReport,
    from_batch: u64,
    to_batch: u64,
    extract: impl Fn(&ppa_engine::SinkBatch) -> Vec<T>,
) -> f64 {
    let collect = |rep: &RunReport| -> BTreeSet<T> {
        rep.sink
            .iter()
            .filter(|s| (from_batch..to_batch).contains(&s.batch))
            .flat_map(|s| extract(s).into_iter())
            .collect()
    };
    let sa = collect(golden);
    let st = collect(tentative);
    if sa.is_empty() {
        // No accurate output in the window: nothing to lose.
        return 1.0;
    }
    st.intersection(&sa).count() as f64 / sa.len() as f64
}

/// Q1 accuracy: mean per-batch overlap of the tentative top-k set with the
/// accurate top-k set. Batches the tentative run never emitted count as 0
/// (the sink was down and produced nothing).
pub fn topk_accuracy(
    golden: &RunReport,
    tentative: &RunReport,
    from_batch: u64,
    to_batch: u64,
) -> f64 {
    let mut per_batch = Vec::new();
    for b in from_batch..to_batch {
        let sa: BTreeSet<u64> = golden
            .sink_batches(b)
            .flat_map(|s| topk_set(&s.tuples))
            .collect();
        if sa.is_empty() {
            continue;
        }
        let st: BTreeSet<u64> = tentative
            .sink_batches(b)
            .flat_map(|s| topk_set(&s.tuples))
            .collect();
        per_batch.push(st.intersection(&sa).count() as f64 / sa.len() as f64);
    }
    if per_batch.is_empty() {
        return 1.0;
    }
    per_batch.iter().sum::<f64>() / per_batch.len() as f64
}

/// Q2 accuracy: overlap of detected incident sets `(segment, incident)` in
/// the window — `|IT ∩ IA| / |IA|`.
pub fn incident_accuracy(
    golden: &RunReport,
    tentative: &RunReport,
    from_batch: u64,
    to_batch: u64,
) -> f64 {
    sink_set_accuracy(golden, tentative, from_batch, to_batch, |s| {
        jam_set(&s.tuples)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_core::model::TaskIndex;
    use ppa_engine::{SinkBatch, Tuple, Value};
    use ppa_sim::SimTime;
    use std::sync::Arc;

    fn report_with(batches: Vec<(u64, Vec<Tuple>)>) -> RunReport {
        let mut rep = RunReport::default();
        for (batch, tuples) in batches {
            rep.sink.push(SinkBatch {
                task: TaskIndex(0),
                batch,
                at: SimTime::from_secs(batch),
                tentative: false,
                tuples,
            });
        }
        rep
    }

    fn digest(keys: &[u64]) -> Vec<Tuple> {
        let counts: Vec<(u64, i64)> = keys.iter().map(|&k| (k, 1)).collect();
        vec![Tuple::new(0, Value::Counts(Arc::from(counts)))]
    }

    #[test]
    fn topk_accuracy_full_overlap_is_one() {
        let g = report_with(vec![(5, digest(&[1, 2, 3, 4]))]);
        let t = report_with(vec![(5, digest(&[1, 2, 3, 4]))]);
        assert!((topk_accuracy(&g, &t, 5, 6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn topk_accuracy_half_overlap() {
        let g = report_with(vec![(5, digest(&[1, 2, 3, 4]))]);
        let t = report_with(vec![(5, digest(&[1, 2, 9, 8]))]);
        assert!((topk_accuracy(&g, &t, 5, 6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn topk_missing_batches_count_zero() {
        let g = report_with(vec![(5, digest(&[1, 2])), (6, digest(&[1, 2]))]);
        let t = report_with(vec![(5, digest(&[1, 2]))]); // batch 6 missing
        assert!((topk_accuracy(&g, &t, 5, 7) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn incident_accuracy_uses_pair_sets() {
        let jam = |seg: u64, id: i64| Tuple::new(seg, Value::Int(id));
        let g = report_with(vec![(3, vec![jam(1, 10), jam(2, 11)])]);
        let t = report_with(vec![(3, vec![jam(1, 10)])]);
        assert!((incident_accuracy(&g, &t, 0, 10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_golden_window_is_perfect() {
        let g = report_with(vec![]);
        let t = report_with(vec![]);
        assert_eq!(incident_accuracy(&g, &t, 0, 10), 1.0);
        assert_eq!(topk_accuracy(&g, &t, 0, 10), 1.0);
    }

    #[test]
    fn window_bounds_are_respected() {
        let jam = |seg: u64, id: i64| Tuple::new(seg, Value::Int(id));
        let g = report_with(vec![(3, vec![jam(1, 10)]), (20, vec![jam(2, 11)])]);
        let t = report_with(vec![(3, vec![jam(1, 10)])]);
        // Batch 20 is outside [0, 10): full accuracy.
        assert_eq!(incident_accuracy(&g, &t, 0, 10), 1.0);
        // Including it halves nothing — tentative still finds jam(1,10) of
        // the two golden jams.
        assert!((incident_accuracy(&g, &t, 0, 30) - 0.5).abs() < 1e-12);
    }
}
