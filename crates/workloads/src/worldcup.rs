//! Q1 (§VI-B): hierarchical top-100 aggregation over a web-access log.
//!
//! The paper replays the WorldCup'98 site log (73M records, ita.ee.lbl.gov)
//! at 48× speed. That trace is not redistributable, so we generate a
//! synthetic access log with Zipf object popularity — Q1 consumes only
//! (server, object) pairs and measures top-k overlap, so a heavy-tailed
//! synthetic log exercises exactly the same code paths (README.md §Design notes).
//!
//! Topology (paper Fig. 11): `source(16) -merge-> O1(8) -merge-> O2(4)
//! -merge-> O3(1)`. O1 computes per-slice (here: per-batch) hit counts per
//! object, O2 merges partial counts, O3 maintains the sliding window and
//! continuously updates the global top-100.

use crate::zipf::{uniform_hash, Zipf};
use crate::{dedicated_placement, Scenario};
use ppa_core::model::{OperatorSpec, Partitioning};
use ppa_engine::{BatchCtx, InputBatch, Query, QueryBuilder, SourceGen, Tuple, Udf, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Q1 parameters.
#[derive(Debug, Clone)]
pub struct Q1Config {
    /// Source parallelism (one task per "server group"; paper: 16).
    pub src_tasks: usize,
    /// O1 / O2 parallelism (paper: 8 / 4).
    pub o1_tasks: usize,
    pub o2_tasks: usize,
    /// Tuples per source task per batch.
    pub rate: usize,
    /// Number of distinct objects (URLs).
    pub n_objects: usize,
    /// Zipf exponent of object popularity (web traffic is heavy-tailed).
    pub zipf_s: f64,
    /// `k` of the top-k (paper: 100).
    pub k: usize,
    /// Sliding window length in batches at O3.
    pub window_batches: u64,
    pub seed: u64,
}

impl Default for Q1Config {
    fn default() -> Self {
        Q1Config {
            src_tasks: 16,
            o1_tasks: 8,
            o2_tasks: 4,
            rate: 500,
            n_objects: 400,
            zipf_s: 0.8,
            k: 100,
            window_batches: 20,
            seed: 1998,
        }
    }
}

/// The synthetic access-log source: `rate` hits per batch, objects sampled
/// from a Zipf distribution, deterministic per (seed, task, batch, i).
///
/// Objects are *server-affine*: each server group (source task) serves its
/// own slice of the object space, Zipf-distributed within the slice. Losing
/// a server therefore removes its objects from the tentative top-k — the
/// behaviour that makes top-k accuracy sensitive to lost partitions (the
/// WorldCup'98 trace exhibits strong per-server content affinity too).
#[derive(Clone)]
struct AccessLogSource {
    task: u64,
    rate: usize,
    /// Zipf over the task's local object slice.
    zipf: Zipf,
    objects_per_task: u64,
    seed: u64,
}

impl SourceGen for AccessLogSource {
    fn batch(&mut self, batch: u64) -> Vec<Tuple> {
        let base = self.task * self.objects_per_task;
        (0..self.rate)
            .map(|i| {
                let u = uniform_hash(self.seed, self.task, batch, i as u64);
                Tuple::key_only(base + self.zipf.sample_u(u) as u64)
            })
            .collect()
    }
}

/// O1/O2: aggregate per-object hit counts within each batch (O1 counts raw
/// hits; O2 sums partial counts). Stateless across batches — the window
/// lives at O3 (hierarchical aggregation).
#[derive(Clone)]
struct CountCombine;

impl Udf for CountCombine {
    fn on_batch(&mut self, _ctx: &BatchCtx, inputs: &[InputBatch<'_>], out: &mut Vec<Tuple>) {
        let mut counts: BTreeMap<u64, i64> = BTreeMap::new();
        for input in inputs {
            for t in input.tuples {
                let add = t.value.as_int().unwrap_or(1);
                *counts.entry(t.key).or_insert(0) += add;
            }
        }
        out.extend(
            counts
                .into_iter()
                .map(|(k, c)| Tuple::new(k, Value::Int(c))),
        );
    }

    fn snapshot(&self) -> Box<dyn Udf> {
        Box::new(self.clone())
    }

    fn state_tuples(&self) -> usize {
        0
    }
}

/// O3: sliding-window top-k. State: the window's per-batch count maps.
#[derive(Clone)]
struct TopK {
    k: usize,
    window_batches: u64,
    window: std::collections::VecDeque<(u64, BTreeMap<u64, i64>)>,
}

impl TopK {
    fn new(k: usize, window_batches: u64) -> Self {
        TopK {
            k,
            window_batches,
            window: Default::default(),
        }
    }
}

impl Udf for TopK {
    fn on_batch(&mut self, ctx: &BatchCtx, inputs: &[InputBatch<'_>], out: &mut Vec<Tuple>) {
        let mut counts: BTreeMap<u64, i64> = BTreeMap::new();
        for input in inputs {
            for t in input.tuples {
                *counts.entry(t.key).or_insert(0) += t.value.as_int().unwrap_or(1);
            }
        }
        self.window.push_back((ctx.batch, counts));
        let min_keep = ctx
            .batch
            .saturating_sub(self.window_batches.saturating_sub(1));
        while self.window.front().is_some_and(|(b, _)| *b < min_keep) {
            self.window.pop_front();
        }
        // Global counts over the window.
        let mut total: BTreeMap<u64, i64> = BTreeMap::new();
        for (_, m) in &self.window {
            for (k, c) in m {
                *total.entry(*k).or_insert(0) += c;
            }
        }
        let mut ranked: Vec<(u64, i64)> = total.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(self.k);
        out.push(Tuple::new(0, Value::Counts(Arc::from(ranked))));
    }

    fn snapshot(&self) -> Box<dyn Udf> {
        Box::new(self.clone())
    }

    fn state_tuples(&self) -> usize {
        self.window.iter().map(|(_, m)| m.len()).sum()
    }
}

/// Builds the Q1 query.
pub fn q1_query(cfg: &Q1Config) -> Query {
    assert!(
        cfg.src_tasks.is_multiple_of(cfg.o1_tasks) && cfg.o1_tasks.is_multiple_of(cfg.o2_tasks)
    );
    let mut q = QueryBuilder::new();
    let objects_per_task = (cfg.n_objects / cfg.src_tasks).max(1);
    let zipf = Zipf::new(objects_per_task, cfg.zipf_s);
    let (rate, seed) = (cfg.rate, cfg.seed);
    let src = q.add_source(
        OperatorSpec::source("access-log", cfg.src_tasks, cfg.rate as f64),
        move |task| {
            Box::new(AccessLogSource {
                task: task as u64,
                rate,
                zipf: zipf.clone(),
                objects_per_task: objects_per_task as u64,
                seed,
            })
        },
    );
    // Selectivity estimates drive the rate model's OF weights: O1 compresses
    // hits into per-object counts; O2 merges counts; O3 emits one digest.
    let o1_sel = (cfg.n_objects as f64 / cfg.rate as f64).min(1.0);
    let o1 = q.add_operator(
        OperatorSpec::map("O1-slice-count", cfg.o1_tasks, o1_sel),
        |_| Box::new(CountCombine),
    );
    let o2 = q.add_operator(OperatorSpec::map("O2-merge", cfg.o2_tasks, 1.0), |_| {
        Box::new(CountCombine)
    });
    let (k, w) = (cfg.k, cfg.window_batches);
    let o3 = q.add_operator(OperatorSpec::map("O3-top-k", 1, 0.01), move |_| {
        Box::new(TopK::new(k, w))
    });
    let link = |a: usize, b: usize| {
        if a == b {
            Partitioning::OneToOne
        } else {
            Partitioning::Merge
        }
    };
    q.connect(src, o1, link(cfg.src_tasks, cfg.o1_tasks))
        .unwrap();
    q.connect(o1, o2, link(cfg.o1_tasks, cfg.o2_tasks)).unwrap();
    q.connect(o2, o3, link(cfg.o2_tasks, 1)).unwrap();
    q.build().expect("q1 topology is valid")
}

/// Q1 scenario with the paper's placement style.
pub fn q1_scenario(cfg: &Q1Config) -> Scenario {
    let query = q1_query(cfg);
    let graph = ppa_core::model::TaskGraph::new(query.topology().clone());
    let (placement, worker_kill_set) = dedicated_placement(&graph);
    Scenario {
        query,
        placement,
        worker_kill_set,
        placement_strategy: crate::DEDICATED.to_string(),
        policy: None,
    }
}

/// Extracts the top-k set from a Q1 sink batch (the digest tuple).
pub fn topk_set(tuples: &[Tuple]) -> Vec<u64> {
    tuples
        .iter()
        .filter_map(|t| t.value.as_counts())
        .flat_map(|c| c.iter().map(|(k, _)| *k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_engine::{EngineConfig, FtMode, Simulation};
    use ppa_sim::SimDuration;

    fn small() -> Q1Config {
        Q1Config {
            src_tasks: 4,
            o1_tasks: 2,
            o2_tasks: 2,
            rate: 200,
            n_objects: 100,
            k: 20,
            window_batches: 5,
            ..Q1Config::default()
        }
    }

    #[test]
    fn q1_shape() {
        let q = q1_query(&Q1Config::default());
        let t = q.topology();
        let paras: Vec<usize> = t.operators().iter().map(|o| o.parallelism).collect();
        assert_eq!(paras, vec![16, 8, 4, 1]);
        assert_eq!(t.sinks().len(), 1);
    }

    #[test]
    fn q1_emits_topk_digests() {
        let s = q1_scenario(&small());
        let report = Simulation::run(
            &s.query,
            s.placement.clone(),
            EngineConfig {
                mode: FtMode::None,
                ..Default::default()
            },
            vec![],
            SimDuration::from_secs(10),
        );
        assert!(!report.sink.is_empty());
        for sb in &report.sink {
            let set = topk_set(&sb.tuples);
            assert_eq!(set.len(), 20, "k entries per digest");
        }
    }

    #[test]
    fn q1_topk_reflects_zipf_head() {
        let s = q1_scenario(&small());
        let report = Simulation::run(
            &s.query,
            s.placement.clone(),
            EngineConfig {
                mode: FtMode::None,
                ..Default::default()
            },
            vec![],
            SimDuration::from_secs(10),
        );
        let last = report.sink.last().unwrap();
        let set = topk_set(&last.tuples);
        // Object 0 is the hottest by construction.
        assert!(set.contains(&0), "hot head object must rank top-k: {set:?}");
    }

    #[test]
    fn topk_udf_window_slides() {
        use ppa_sim::SimTime;
        let mut udf = TopK::new(3, 2);
        let ctx = |b| BatchCtx {
            batch: b,
            now: SimTime::ZERO,
            task_local: 0,
            parallelism: 1,
        };
        let batch = |key: u64, n: i64| vec![Tuple::new(key, Value::Int(n))];
        let mut out = Vec::new();
        udf.on_batch(
            &ctx(0),
            &[InputBatch {
                stream: 0,
                tuples: &batch(1, 10),
            }],
            &mut out,
        );
        out.clear();
        udf.on_batch(
            &ctx(1),
            &[InputBatch {
                stream: 0,
                tuples: &batch(2, 5),
            }],
            &mut out,
        );
        out.clear();
        // Batch 2 evicts batch 0: object 1's count disappears.
        udf.on_batch(
            &ctx(2),
            &[InputBatch {
                stream: 0,
                tuples: &batch(3, 1),
            }],
            &mut out,
        );
        let set = topk_set(&out);
        assert_eq!(set, vec![2, 3], "object 1 fell out of the window");
    }

    #[test]
    fn count_combine_sums_partials() {
        use ppa_sim::SimTime;
        let mut udf = CountCombine;
        let ctx = BatchCtx {
            batch: 0,
            now: SimTime::ZERO,
            task_local: 0,
            parallelism: 1,
        };
        let a = vec![Tuple::new(7, Value::Int(3)), Tuple::new(8, Value::Int(1))];
        let b = vec![Tuple::new(7, Value::Int(2))];
        let mut out = Vec::new();
        udf.on_batch(
            &ctx,
            &[
                InputBatch {
                    stream: 0,
                    tuples: &a,
                },
                InputBatch {
                    stream: 0,
                    tuples: &b,
                },
            ],
            &mut out,
        );
        let seven = out.iter().find(|t| t.key == 7).unwrap();
        assert_eq!(seven.value.as_int(), Some(5));
    }
}
