//! # ppa — Passive and Partially Active fault tolerance for MPSPEs
//!
//! Facade crate re-exporting the PPA workspace: a from-scratch Rust
//! reproduction of *"Tolerating Correlated Failures in Massively Parallel
//! Stream Processing Engines"* (Su & Zhou, ICDE 2016).
//!
//! * [`core`] — topology model, Output Fidelity metric, MC-trees and the
//!   DP / Greedy / Structure-Aware replication planners (§II–IV).
//! * [`sim`] — the deterministic discrete-event simulation kernel.
//! * [`engine`] — the Storm-like stream engine substrate with PPA fault
//!   tolerance: checkpoints, active replicas, heartbeat failure detection,
//!   recovery and tentative outputs (§V).
//! * [`workloads`] — the evaluation workloads: the synthetic Fig. 6 query,
//!   Q1 (top-k over access logs) and Q2 (traffic incident detection).
//! * [`faults`] — fault-domain trees, failure traces and generative
//!   failure processes.
//! * [`obs`] — deterministic observability: typed trace events, the
//!   metrics registry, and the JSONL / Chrome-trace / timeline exporters.
//!
//! See `README.md` for a guided tour and `examples/` for runnable programs.

pub use ppa_core as core;
pub use ppa_engine as engine;
pub use ppa_faults as faults;
pub use ppa_obs as obs;
pub use ppa_sim as sim;
pub use ppa_workloads as workloads;
